(* Tests for the full virtual-memory manager (Vmm), reservation-based
   superpages, and the parallel map utility. *)

open Atp_memsim
open Atp_util

let check = Alcotest.check

let vmm_config ~ram ~tlb =
  { Vmm.default_config with ram_pages = ram; tlb_entries = tlb }

(* --- Vmm --------------------------------------------------------------- *)

let test_vmm_segfault () =
  let vm = Vmm.create (vmm_config ~ram:64 ~tlb:16) in
  Vmm.mmap vm ~start:100 ~pages:10;
  Vmm.read vm 105;
  Alcotest.check_raises "below region" (Vmm.Segfault 99) (fun () ->
      Vmm.read vm 99);
  Alcotest.check_raises "above region" (Vmm.Segfault 110) (fun () ->
      Vmm.read vm 110)

let test_vmm_mmap_overlap_rejected () =
  let vm = Vmm.create (vmm_config ~ram:64 ~tlb:16) in
  Vmm.mmap vm ~start:0 ~pages:10;
  Alcotest.check_raises "overlap" (Invalid_argument "Vmm.mmap: region overlap")
    (fun () -> Vmm.mmap vm ~start:5 ~pages:10)

let test_vmm_demand_paging () =
  let vm = Vmm.create (vmm_config ~ram:64 ~tlb:16) in
  Vmm.mmap vm ~start:0 ~pages:32;
  for v = 0 to 31 do Vmm.read vm v done;
  let c = Vmm.counters vm in
  check Alcotest.int "first touches are minor faults" 32 c.Vmm.minor_faults;
  check Alcotest.int "no swap-ins yet" 0 c.Vmm.major_faults;
  check Alcotest.int "all resident" 32 (Vmm.resident_pages vm);
  (* Re-reads hit the TLB (16 entries) or at worst re-walk. *)
  Vmm.reset_counters vm;
  for v = 0 to 15 do Vmm.read vm v done;
  for v = 0 to 15 do Vmm.read vm v done;
  let c = Vmm.counters vm in
  check Alcotest.int "no faults on resident pages"
    0 (c.Vmm.minor_faults + c.Vmm.major_faults)

let test_vmm_swap_cycle () =
  (* RAM of 8 frames, working set of 16 pages: pages get evicted and
     must come back as major faults. *)
  let vm = Vmm.create (vmm_config ~ram:8 ~tlb:4) in
  Vmm.mmap vm ~start:0 ~pages:16;
  for v = 0 to 15 do Vmm.read vm v done;
  let c = Vmm.counters vm in
  check Alcotest.int "16 minor faults" 16 c.Vmm.minor_faults;
  check Alcotest.bool "evictions happened" true (c.Vmm.evictions >= 8);
  check Alcotest.bool "RAM bounded" true (Vmm.resident_pages vm <= 8);
  (* Touch an evicted page: a major fault with swap-in cost. *)
  Vmm.reset_counters vm;
  Vmm.read vm 0;
  let c = Vmm.counters vm in
  check Alcotest.int "swap-in" 1 c.Vmm.major_faults;
  check Alcotest.bool "swap-in cost counted" true
    (c.Vmm.total_cycles >= Vmm.default_config.Vmm.io_cycles)

let test_vmm_dirty_writeback () =
  let vm = Vmm.create (vmm_config ~ram:4 ~tlb:2) in
  Vmm.mmap vm ~start:0 ~pages:12;
  (* Write 4 pages (dirty), then stream 8 clean pages to evict them. *)
  for v = 0 to 3 do Vmm.write vm v done;
  for v = 4 to 11 do Vmm.read vm v done;
  let c = Vmm.counters vm in
  check Alcotest.bool "dirty evictions forced writebacks" true
    (c.Vmm.writebacks >= 1);
  check Alcotest.bool "writebacks bounded by dirty pages" true
    (c.Vmm.writebacks <= 4)

let test_vmm_clock_prefers_cold_pages () =
  (* 3 frames: keep two pages hot, stream others; the hot pages should
     survive (their accessed bits give second chances). *)
  let vm = Vmm.create (vmm_config ~ram:3 ~tlb:2) in
  Vmm.mmap vm ~start:0 ~pages:64;
  Vmm.read vm 0;
  Vmm.read vm 1;
  Vmm.reset_counters vm;
  for v = 2 to 33 do
    Vmm.read vm 0;
    Vmm.read vm 1;
    Vmm.read vm v
  done;
  let c = Vmm.counters vm in
  (* Pages 0 and 1 re-accessed 32 times each: if CLOCK kept them, no
     major faults for them.  Allow a handful of unlucky evictions. *)
  check Alcotest.bool
    (Printf.sprintf "hot pages mostly survive (majors = %d)" c.Vmm.major_faults)
    true
    (c.Vmm.major_faults < 10)

let test_vmm_munmap () =
  let vm = Vmm.create (vmm_config ~ram:16 ~tlb:8) in
  Vmm.mmap vm ~start:0 ~pages:8;
  for v = 0 to 7 do Vmm.write vm v done;
  Vmm.munmap vm ~start:0 ~pages:8;
  check Alcotest.int "nothing resident" 0 (Vmm.resident_pages vm);
  check Alcotest.bool "unmapped" false (Vmm.is_mapped vm 3);
  Alcotest.check_raises "poked after munmap" (Vmm.Segfault 3) (fun () ->
      Vmm.read vm 3);
  (* Remapping the region gives fresh zero pages (minor, not major). *)
  Vmm.mmap vm ~start:0 ~pages:8;
  Vmm.reset_counters vm;
  Vmm.read vm 3;
  let c = Vmm.counters vm in
  check Alcotest.int "fresh page, no swap-in" 0 c.Vmm.major_faults;
  check Alcotest.int "minor fault" 1 c.Vmm.minor_faults

(* Regression for the full-flush bug: one single-page munmap used to
   flush the whole PWC, making every later walk cold.  With per-entry
   (INVLPG-style) invalidation, a working set in an unrelated part of
   the address space keeps its walk-cache hit rate. *)
let test_vmm_munmap_keeps_unrelated_pwc () =
  let vm = Vmm.create (vmm_config ~ram:256 ~tlb:2) in
  (* Working set: pages 0..63, far from the victim region (no shared
     interior prefix at any level).  The tiny TLB forces every access
     through the walker. *)
  Vmm.mmap vm ~start:0 ~pages:64;
  let far = 1 lsl 27 in
  Vmm.mmap vm ~start:far ~pages:1;
  for v = 0 to 63 do Vmm.read vm v done;
  Vmm.read vm far;
  (* Warm pass to establish the steady-state walk cost. *)
  let warm_accesses before after =
    after.Walker.total_memory_accesses - before.Walker.total_memory_accesses
  in
  let s0 = Vmm.walker_stats vm in
  for v = 0 to 63 do Vmm.read vm v done;
  let s1 = Vmm.walker_stats vm in
  let warm = warm_accesses s0 s1 in
  Vmm.munmap vm ~start:far ~pages:1;
  let s2 = Vmm.walker_stats vm in
  for v = 0 to 63 do Vmm.read vm v done;
  let s3 = Vmm.walker_stats vm in
  let after_unmap = warm_accesses s2 s3 in
  check Alcotest.int "unmap of an unrelated page costs no warmth" warm
    after_unmap

let test_vmm_bulk_munmap_still_flushes () =
  (* A bulk unmap (> 32 pages) takes the one full flush: the next walk
     anywhere is cold. *)
  let vm = Vmm.create (vmm_config ~ram:512 ~tlb:2) in
  Vmm.mmap vm ~start:0 ~pages:8;
  Vmm.mmap vm ~start:4096 ~pages:64;
  for v = 0 to 7 do Vmm.read vm v done;
  for v = 4096 to 4159 do Vmm.read vm v done;
  Vmm.munmap vm ~start:4096 ~pages:64;
  let s0 = Vmm.walker_stats vm in
  Vmm.read vm 0;
  let s1 = Vmm.walker_stats vm in
  check Alcotest.int "cold walk after bulk flush" Page_table.levels
    (s1.Walker.total_memory_accesses - s0.Walker.total_memory_accesses)

(* Cycle conservation: every cycle the Vmm bills is attributable to
   exactly one of TLB hits, page walks, or IO — across paging
   pressure, writebacks, and the walker tier on or off. *)
let prop_vmm_cycle_conservation =
  QCheck.Test.make ~count:40 ~name:"Vmm cycles = tlb + walk + io"
    QCheck.(
      triple (int_range 16 128)
        (list_of_size Gen.(int_range 1 400) (pair (int_bound 255) bool))
        (oneofl [ 0; 8 ]))
    (fun (ram, ops, tcache_entries) ->
      let cfg =
        { Vmm.default_config with
          ram_pages = ram;
          tlb_entries = 8;
          walker = { Walker.default_config with tcache_entries };
        }
      in
      let vm = Vmm.create cfg in
      Vmm.mmap vm ~start:0 ~pages:256;
      List.iter
        (fun (v, w) -> if w then Vmm.write vm v else Vmm.read vm v)
        ops;
      let c = Vmm.counters vm in
      let expected =
        (c.Vmm.tlb_hits * cfg.Vmm.tlb_hit_cycles)
        + c.Vmm.walk_cycles
        + (cfg.Vmm.io_cycles * (c.Vmm.major_faults + c.Vmm.writebacks))
      in
      if expected <> c.Vmm.total_cycles then
        QCheck.Test.fail_reportf "expected %d cycles, billed %d" expected
          c.Vmm.total_cycles;
      true)

let test_vmm_translation_fraction () =
  (* Under swap pressure, IO cycles share the bill with translation. *)
  let vm = Vmm.create (vmm_config ~ram:256 ~tlb:8) in
  Vmm.mmap vm ~start:0 ~pages:512;
  let rng = Prng.create ~seed:3 () in
  for _ = 1 to 5_000 do
    Vmm.read vm (Prng.int rng 512)
  done;
  let f = Vmm.translation_fraction vm in
  check Alcotest.bool
    (Printf.sprintf "translation fraction in (0,1) (%.3f)" f)
    true
    (f > 0.0 && f < 1.0);
  (* With everything resident and a tiny TLB, translation is the whole
     bill — the regime where the paper reports up to 83%% of execution
     time going to address translation. *)
  let vm = Vmm.create (vmm_config ~ram:1024 ~tlb:8) in
  Vmm.mmap vm ~start:0 ~pages:512;
  for v = 0 to 511 do Vmm.read vm v done;
  Vmm.reset_counters vm;
  for _ = 1 to 5_000 do
    Vmm.read vm (Prng.int rng 512)
  done;
  check Alcotest.bool "translation dominates when resident" true
    (Vmm.translation_fraction vm > 0.9)

(* --- Superpage ----------------------------------------------------------- *)

let sp_config ~ram ~h =
  {
    Superpage.default_config with
    ram_pages = ram;
    base_tlb_entries = 64;
    huge_tlb_entries = 8;
    huge_size = h;
  }

let test_superpage_reservation_and_promotion () =
  let t = Superpage.create (sp_config ~ram:256 ~h:16) in
  Superpage.access t 0;
  let c = Superpage.counters t in
  check Alcotest.int "one reservation" 1 c.Superpage.reservations;
  check Alcotest.int "15 frames reserved unused" 15
    (Superpage.reserved_unused_frames t);
  (* Populate the rest: free promotion, no extra IO beyond the 16
     fills. *)
  for v = 1 to 15 do Superpage.access t v done;
  let c = Superpage.counters t in
  check Alcotest.int "promoted" 1 c.Superpage.promotions;
  check Alcotest.int "exactly 16 IOs" 16 c.Superpage.ios;
  check Alcotest.int "no waste once promoted" 0
    (Superpage.reserved_unused_frames t);
  check Alcotest.int "one superpage" 1 (Superpage.promoted_regions t)

let test_superpage_preemption_under_pressure () =
  (* RAM of 4 reservations' worth; touch one page in each of 8 regions:
     reservations must be preempted, not crash, and the touched pages
     stay resident. *)
  let t = Superpage.create (sp_config ~ram:64 ~h:16) in
  for r = 0 to 7 do
    Superpage.access t (r * 16)
  done;
  let c = Superpage.counters t in
  check Alcotest.bool "preemptions happened" true (c.Superpage.preemptions >= 4);
  check Alcotest.int "every touched page resident" 8 (Superpage.resident_pages t);
  (* All 8 pages are still translatable without further IO. *)
  Superpage.reset_counters t;
  for r = 0 to 7 do
    Superpage.access t (r * 16)
  done;
  let c = Superpage.counters t in
  check Alcotest.int "no refault IOs" 0 c.Superpage.ios

let test_superpage_no_copy_promotion_contiguity () =
  (* Unlike THP, promotion never moves data: IOs equal fills exactly
     even across many promotions. *)
  let t = Superpage.create (sp_config ~ram:1024 ~h:16) in
  for v = 0 to (16 * 8) - 1 do Superpage.access t v done;
  let c = Superpage.counters t in
  check Alcotest.int "8 promotions" 8 c.Superpage.promotions;
  check Alcotest.int "IOs = populated pages" (16 * 8) c.Superpage.ios

let test_superpage_huge_eviction () =
  let t = Superpage.create (sp_config ~ram:32 ~h:16) in
  (* Promote one region, then push 17+ base pages from regions that
     cannot reserve (RAM too tight): the superpage is evicted whole. *)
  for v = 0 to 15 do Superpage.access t v done;
  for r = 10 to 40 do Superpage.access t (r * 16) done;
  let c = Superpage.counters t in
  check Alcotest.bool "superpage evicted whole" true (c.Superpage.huge_evictions >= 1);
  check Alcotest.bool "RAM bounded" true (Superpage.resident_pages t <= 32)

(* --- Parallel -------------------------------------------------------------- *)

let test_parallel_matches_sequential () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  check Alcotest.(list int) "1 domain" (List.map f xs) (Parallel.map ~domains:1 f xs);
  check Alcotest.(list int) "4 domains" (List.map f xs) (Parallel.map ~domains:4 f xs);
  check Alcotest.(list int) "default" (List.map f xs) (Parallel.map f xs)

let test_parallel_empty_and_small () =
  check Alcotest.(list int) "empty" [] (Parallel.map ~domains:4 Fun.id []);
  check Alcotest.(list int) "singleton" [ 7 ] (Parallel.map ~domains:4 Fun.id [ 7 ])

let test_parallel_propagates_exception () =
  check Alcotest.bool "raises" true
    (try
       ignore (Parallel.map ~domains:3 (fun x -> if x = 5 then failwith "boom" else x)
                 (List.init 10 Fun.id));
       false
     with Failure m -> m = "boom")

let test_parallel_order_preserved_under_load () =
  let xs = List.init 1_000 Fun.id in
  let f x =
    (* Uneven work so domains interleave. *)
    let acc = ref 0 in
    for i = 0 to x mod 97 do acc := !acc + i done;
    x + (!acc * 0)
  in
  check Alcotest.(list int) "order" xs (Parallel.map ~domains:4 f xs)

let test_parallel_rejects_bad_domains () =
  Alcotest.check_raises "zero domains"
    (Invalid_argument "Parallel.map: need at least one domain") (fun () ->
      ignore (Parallel.map ~domains:0 Fun.id [ 1 ]))

let () =
  Alcotest.run "atp.vm"
    [
      ( "vmm",
        [
          Alcotest.test_case "segfault" `Quick test_vmm_segfault;
          Alcotest.test_case "mmap overlap" `Quick test_vmm_mmap_overlap_rejected;
          Alcotest.test_case "demand paging" `Quick test_vmm_demand_paging;
          Alcotest.test_case "swap cycle" `Quick test_vmm_swap_cycle;
          Alcotest.test_case "dirty writeback" `Quick test_vmm_dirty_writeback;
          Alcotest.test_case "clock keeps hot pages" `Quick test_vmm_clock_prefers_cold_pages;
          Alcotest.test_case "munmap" `Quick test_vmm_munmap;
          Alcotest.test_case "munmap keeps unrelated PWC" `Quick
            test_vmm_munmap_keeps_unrelated_pwc;
          Alcotest.test_case "bulk munmap flushes" `Quick
            test_vmm_bulk_munmap_still_flushes;
          Alcotest.test_case "translation fraction" `Quick test_vmm_translation_fraction;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_vmm_cycle_conservation ]
      );
      ( "superpage",
        [
          Alcotest.test_case "reserve + promote" `Quick
            test_superpage_reservation_and_promotion;
          Alcotest.test_case "preemption" `Quick test_superpage_preemption_under_pressure;
          Alcotest.test_case "no-copy promotion" `Quick
            test_superpage_no_copy_promotion_contiguity;
          Alcotest.test_case "huge eviction" `Quick test_superpage_huge_eviction;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "matches sequential" `Quick test_parallel_matches_sequential;
          Alcotest.test_case "empty/small" `Quick test_parallel_empty_and_small;
          Alcotest.test_case "exceptions" `Quick test_parallel_propagates_exception;
          Alcotest.test_case "order under load" `Quick test_parallel_order_preserved_under_load;
          Alcotest.test_case "bad domains" `Quick test_parallel_rejects_bad_domains;
        ] );
    ]
