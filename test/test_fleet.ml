(* The fleet differential harness: tenant-sharded parallel replay must
   be byte-identical to interleaved sequential replay — per-tenant
   reports AND obs snapshots — across policies, shard counts, and the
   generic/fused simulator pair; tenants must be perfectly isolated;
   counters must be conserved; and a 100k-tenant churn run must
   complete in O(active-tenant) memory with zero ASID leaks. *)

open Atp_util
open Atp_core
open Atp_paging
open Atp_workloads
open Atp_fleet
module Obs = Atp_obs
module Engine = Atp_engine.Engine

let check = Alcotest.check

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let params = Params.derive ~p:2048 ~w:64 ()

let policies = [ "lru"; "fifo"; "2q" ]

let shard_counts = [ 1; 2; 4; 8 ]

(* Per-tenant simulator factories: seeds are a function of the tenant
   id only, so worker domains build identical simulators whatever the
   schedule. *)
let make_sim ~policy tenant =
  let x =
    Policy.instantiate_fast
      (Registry.find_fast_exn policy)
      ~rng:(Prng.create ~seed:(11 + tenant) ())
      ~capacity:16 ()
  in
  let y =
    Policy.instantiate_fast
      (Registry.find_fast_exn policy)
      ~rng:(Prng.create ~seed:(13 + tenant) ())
      ~capacity:64 ()
  in
  Simulation.create ~seed:(7 + tenant) ~params ~x ~y ()

let make_fused ~policy tenant =
  Sim_fused.for_names ~seed:(7 + tenant) ~params ~x_name:policy
    ~x_capacity:16
    ~x_rng:(Prng.create ~seed:(11 + tenant) ())
    ~y_name:policy ~y_capacity:64
    ~y_rng:(Prng.create ~seed:(13 + tenant) ())
    ()

let spec =
  Mix.spec ~name:"fleet-mix" ~weights:[| 0.7; 0.3 |]
    [|
      (fun rng -> Simple.zipf ~virtual_pages:1024 rng);
      (fun rng -> Simple.uniform ~virtual_pages:1024 rng);
    |]

let churn_cfg =
  {
    Lifecycle.seed = 42;
    ticks = 400;
    arrival_rate = 0.8;
    mean_lifetime = 60.0;
    accesses_per_tick = 32;
    max_active = 64;
    initial = 8;
    pinned = 2;
    pinned_weight = 8.0;
  }

let make_source () = Lifecycle.source churn_cfg ~spec

let tenant_report_t : Engine.tenant_report Alcotest.testable =
  Alcotest.testable Engine.pp_tenant_report ( = )

let source_of_events events =
  let i = ref 0 in
  fun () ->
    if !i >= Array.length events then None
    else begin
      let e = events.(!i) in
      incr i;
      Some e
    end

(* ------------------------------------------------------------------ *)
(* Differential: sharded = sequential, generic = fused                 *)
(* ------------------------------------------------------------------ *)

let test_sharded_matches_sequential () =
  List.iter
    (fun policy ->
      let reg_seq = Obs.Registry.create () in
      let seq =
        Engine.replay_tenants_sequential
          ~obs:(Obs.Scope.v reg_seq)
          ~make_sim:(make_sim ~policy) (make_source ())
      in
      check Alcotest.bool
        (policy ^ ": some tenants reported")
        true
        (List.length seq > 50);
      List.iter
        (fun shards ->
          let reg_sh = Obs.Registry.create () in
          let sharded =
            Engine.replay_tenants
              ~obs:(Obs.Scope.v reg_sh)
              ~shards ~make_sim:(make_sim ~policy) make_source
          in
          let label = Printf.sprintf "%s, %d shards" policy shards in
          check (Alcotest.list tenant_report_t) label seq sharded;
          check Alcotest.string (label ^ " (obs snapshot)")
            (Obs.Registry.snapshot_string reg_seq)
            (Obs.Registry.snapshot_string reg_sh))
        shard_counts)
    policies

let test_fused_matches_generic () =
  List.iter
    (fun policy ->
      let reg_gen = Obs.Registry.create () in
      let generic =
        Engine.replay_tenants_sequential
          ~obs:(Obs.Scope.v reg_gen)
          ~make_sim:(make_sim ~policy) (make_source ())
      in
      let reg_fus = Obs.Registry.create () in
      let fused_seq =
        Engine.replay_tenants_sequential_fused
          ~obs:(Obs.Scope.v reg_fus)
          ~make_fused:(make_fused ~policy) (make_source ())
      in
      check
        (Alcotest.list tenant_report_t)
        (policy ^ ": fused sequential")
        generic fused_seq;
      check Alcotest.string
        (policy ^ ": fused sequential (obs snapshot)")
        (Obs.Registry.snapshot_string reg_gen)
        (Obs.Registry.snapshot_string reg_fus);
      List.iter
        (fun shards ->
          let fused_sh =
            Engine.replay_tenants_fused ~shards ~make_fused:(make_fused ~policy)
              make_source
          in
          check
            (Alcotest.list tenant_report_t)
            (Printf.sprintf "%s: fused, %d shards" policy shards)
            generic fused_sh)
        shard_counts)
    policies

let test_tenant_totals_shard_invariant () =
  let policy = "lru" in
  let seq =
    Engine.replay_tenants_sequential ~make_sim:(make_sim ~policy)
      (make_source ())
  in
  let t0 = Engine.tenant_totals seq in
  List.iter
    (fun shards ->
      let t =
        Engine.tenant_totals
          (Engine.replay_tenants ~shards ~make_sim:(make_sim ~policy)
             make_source)
      in
      check Alcotest.bool
        (Printf.sprintf "totals equal at %d shards" shards)
        true (t = t0))
    shard_counts

(* ------------------------------------------------------------------ *)
(* qcheck: isolation and conservation                                  *)
(* ------------------------------------------------------------------ *)

let tenant_of = function
  | Engine.Tarrive { tenant } | Engine.Taccess { tenant; _ }
  | Engine.Tdepart { tenant } ->
    tenant

let events_of_ops ops =
  List.map
    (fun (tenant, kind, page) ->
      match kind with
      | 0 -> Engine.Tarrive { tenant }
      | 1 -> Engine.Taccess { tenant; page }
      | _ -> Engine.Tdepart { tenant })
    ops

let ops_arb =
  QCheck.(list_of_size (Gen.int_range 0 200) (triple (int_bound 3) (int_bound 2) (int_bound 255)))

(* A tenant's reports from the interleaved stream equal its reports
   from replaying its own events alone: nothing any other tenant does
   is observable. *)
let prop_tenant_isolation =
  QCheck.Test.make ~count:50 ~name:"tenant isolation (interleaved = solo)"
    ops_arb (fun ops ->
      let events = events_of_ops ops in
      let arr = Array.of_list events in
      let full =
        Engine.replay_tenants_sequential ~make_sim:(make_sim ~policy:"lru")
          (source_of_events arr)
      in
      List.for_all
        (fun tenant ->
          let mine =
            Array.of_list (List.filter (fun e -> tenant_of e = tenant) events)
          in
          let solo =
            Engine.replay_tenants_sequential ~make_sim:(make_sim ~policy:"lru")
              (source_of_events mine)
          in
          List.filter (fun r -> r.Engine.tenant = tenant) full = solo)
        [ 0; 1; 2; 3 ])

(* Every access lands in exactly one tenant's report, under any shard
   count. *)
let prop_access_conservation =
  QCheck.Test.make ~count:50 ~name:"access conservation across shards" ops_arb
    (fun ops ->
      let events = events_of_ops ops in
      let arr = Array.of_list events in
      let issued =
        List.length
          (List.filter
             (function Engine.Taccess _ -> true | _ -> false)
             events)
      in
      List.for_all
        (fun shards ->
          let reports =
            Engine.replay_tenants ~shards ~make_sim:(make_sim ~policy:"fifo")
              (fun () -> source_of_events arr)
          in
          let t = Engine.tenant_totals reports in
          t.Engine.accesses = issued
          && t.Engine.accesses
             = List.fold_left
                 (fun acc r -> acc + r.Engine.report.Simulation.accesses)
                 0 reports)
        [ 1; 3; 8 ])

(* ------------------------------------------------------------------ *)
(* Contended machine: determinism, conservation, isolation             *)
(* ------------------------------------------------------------------ *)

let contended_cfg =
  {
    Contended.tlb_entries = 48;
    ram_frames = 512;
    asid_bits = 7;
    page_bits = 20;
    epsilon = 0.01;
  }

let test_contended_deterministic () =
  let run () = Contended.run contended_cfg Contended.Shared (make_source ()) in
  let a = run () and b = run () in
  check Alcotest.bool "identical reruns" true (a = b);
  check Alcotest.int "no asid leaks" 0 a.Contended.leaks;
  check Alcotest.bool "recycling exercised" true (a.Contended.rollovers > 0);
  check Alcotest.bool "peak bounded by cap" true
    (a.Contended.peak_active <= churn_cfg.Lifecycle.max_active)

let test_contended_conservation () =
  let r = Contended.run contended_cfg Contended.Shared (make_source ()) in
  let issued = ref 0 in
  let src = make_source () in
  let continue = ref true in
  while !continue do
    match src () with
    | None -> continue := false
    | Some (Engine.Taccess _) -> incr issued
    | Some _ -> ()
  done;
  let total =
    List.fold_left
      (fun acc (s : Contended.tenant_stats) -> acc + s.accesses)
      0 r.Contended.stats
  in
  check Alcotest.int "every access accounted" !issued total;
  List.iter
    (fun (s : Contended.tenant_stats) ->
      check Alcotest.bool "ios <= fills <= accesses" true
        (s.ios <= s.tlb_fills && s.tlb_fills <= s.accesses))
    r.Contended.stats

let test_reserved_isolation () =
  (* Reserved slices are private: a tenant's stats must equal a run
     where it is the only tenant in the fleet. *)
  let qos = Contended.Reserved { tlb_entries = 16; ram_frames = 64 } in
  let full = Contended.run contended_cfg qos (make_source ()) in
  let events =
    let src = make_source () in
    let out = ref [] in
    let continue = ref true in
    while !continue do
      match src () with
      | None -> continue := false
      | Some e -> out := e :: !out
    done;
    Array.of_list (List.rev !out)
  in
  List.iter
    (fun tenant ->
      let mine =
        Array.of_list
          (List.filter
             (fun e -> tenant_of e = tenant)
             (Array.to_list events))
      in
      let solo = Contended.run contended_cfg qos (source_of_events mine) in
      check Alcotest.bool
        (Printf.sprintf "tenant %d isolated" tenant)
        true
        (List.filter
           (fun (s : Contended.tenant_stats) -> s.tenant = tenant)
           full.Contended.stats
        = solo.Contended.stats))
    [ 0; 1; 5; 17 ]

(* ------------------------------------------------------------------ *)
(* Fairness summary                                                    *)
(* ------------------------------------------------------------------ *)

let test_fairness_exact () =
  let f = Fleet.of_costs [ 4.0; 1.0; 3.0; 2.0 ] in
  check Alcotest.int "tenants" 4 f.Fleet.tenants;
  check (Alcotest.float 1e-9) "mean" 2.5 f.Fleet.mean;
  check (Alcotest.float 1e-9) "p50" 2.0 f.Fleet.p50;
  check (Alcotest.float 1e-9) "p99" 4.0 f.Fleet.p99;
  check (Alcotest.float 1e-9) "max" 4.0 f.Fleet.max_cost;
  (* Jain: (Σx)²/(n·Σx²) = 100 / (4·30). *)
  check (Alcotest.float 1e-9) "jain" (100.0 /. 120.0) f.Fleet.jain;
  let empty = Fleet.of_costs [] in
  check Alcotest.int "empty tenants" 0 empty.Fleet.tenants;
  check (Alcotest.float 1e-9) "empty jain" 1.0 empty.Fleet.jain;
  let uniform = Fleet.of_costs [ 0.5; 0.5; 0.5 ] in
  check (Alcotest.float 1e-9) "uniform jain" 1.0 uniform.Fleet.jain

let test_fairness_observe_and_json () =
  let f = Fleet.of_costs [ 1.0; 2.0 ] in
  let reg = Obs.Registry.create () in
  Fleet.observe (Obs.Scope.v ~prefix:"fleet" reg) f;
  let snap = Obs.Registry.snapshot_string reg in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  check Alcotest.bool "gauges registered" true
    (contains snap "fleet.cost_p99");
  match Obs.Json.of_string (Obs.Json.to_string (Fleet.to_json f)) with
  | Error e -> Alcotest.fail e
  | Ok j ->
    check (Alcotest.option Alcotest.int) "tenants field" (Some 2)
      (Option.bind (Obs.Json.member "tenants" j) Obs.Json.as_int)

let golden_shared =
  "tenants=338 mean=0.940957 p50=0.952857 p99=1.010000 max=1.010000 jain=0.9937"

let golden_reserved =
  "tenants=338 mean=0.909143 p50=0.916512 p99=1.010000 max=1.010000 jain=0.9888"

(* Golden fairness report: the Shared-vs-Reserved QoS contrast on the
   fixture fleet, pinned noisy neighbors included, down to the last
   digit.  All arithmetic is integer counters plus deterministic float
   folds, so these strings are stable across runs and platforms; a
   change means the fleet model's behaviour changed. *)
let test_fairness_golden () =
  let render qos =
    let r = Contended.run contended_cfg qos (make_source ()) in
    Format.asprintf "%a"
      Fleet.pp
      (Fleet.of_stats ~epsilon:contended_cfg.Contended.epsilon
         r.Contended.stats)
  in
  check Alcotest.string "shared fairness report" golden_shared
    (render Contended.Shared);
  check Alcotest.string "reserved fairness report" golden_reserved
    (render (Contended.Reserved { tlb_entries = 16; ram_frames = 64 }))

(* ------------------------------------------------------------------ *)
(* 100k-tenant churn: O(active) memory, zero leaks                     *)
(* ------------------------------------------------------------------ *)

let test_churn_100k_tenants () =
  let cfg =
    {
      Lifecycle.seed = 9001;
      ticks = 60_000;
      arrival_rate = 2.0;
      mean_lifetime = 20.0;
      accesses_per_tick = 4;
      max_active = 64;
      initial = 32;
      pinned = 1;
      pinned_weight = 4.0;
    }
  in
  let cheap_spec =
    Mix.spec ~name:"churn"
      [| (fun rng -> Simple.uniform ~virtual_pages:256 rng) |]
  in
  let machine =
    { contended_cfg with Contended.asid_bits = 8; tlb_entries = 64 }
  in
  let arrivals = ref 0 in
  let counting_source () =
    let src = Lifecycle.source cfg ~spec:cheap_spec in
    fun () ->
      match src () with
      | Some (Engine.Tarrive _) as e ->
        incr arrivals;
        e
      | e -> e
  in
  Gc.compact ();
  let before = (Gc.stat ()).Gc.live_words in
  let result = Contended.run machine Contended.Shared (counting_source ()) in
  let reported = List.length result.Contended.stats in
  Gc.compact ();
  let after = (Gc.stat ()).Gc.live_words in
  check Alcotest.bool "at least 100k tenants churned" true
    (!arrivals >= 100_000);
  check Alcotest.int "every tenant reported" !arrivals reported;
  check Alcotest.bool "peak active stays under the cap" true
    (result.Contended.peak_active <= cfg.Lifecycle.max_active);
  check Alcotest.int "no stale-translation leaks" 0 result.Contended.leaks;
  check Alcotest.bool "asid recycling rolled over" true
    (result.Contended.rollovers > 10);
  (* The final stats list is the only O(total-tenants) retention
     (~9 words per tenant); simulator state is O(active).  A leak of
     even ~50 words per departed tenant would add > 5M words and blow
     this bound. *)
  let retained = after - before in
  check Alcotest.bool
    (Printf.sprintf "O(active) memory (retained %d words for %d tenants)"
       retained reported)
    true
    (retained < (reported * 16) + 2_000_000)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fleet"
    [
      ( "differential",
        [
          Alcotest.test_case "sharded = sequential (reports + obs)" `Quick
            test_sharded_matches_sequential;
          Alcotest.test_case "fused = generic" `Quick test_fused_matches_generic;
          Alcotest.test_case "totals shard-invariant" `Quick
            test_tenant_totals_shard_invariant;
        ] );
      ( "properties",
        qsuite [ prop_tenant_isolation; prop_access_conservation ] );
      ( "contended",
        [
          Alcotest.test_case "deterministic, leak-free" `Quick
            test_contended_deterministic;
          Alcotest.test_case "access conservation" `Quick
            test_contended_conservation;
          Alcotest.test_case "reserved isolation" `Quick test_reserved_isolation;
        ] );
      ( "fairness",
        [
          Alcotest.test_case "exact statistics" `Quick test_fairness_exact;
          Alcotest.test_case "observe + json" `Quick
            test_fairness_observe_and_json;
          Alcotest.test_case "golden QoS report" `Quick test_fairness_golden;
        ] );
      ( "churn",
        [
          Alcotest.test_case "100k tenants, O(active) memory" `Quick
            test_churn_100k_tenants;
        ] );
    ]
