open Atp_workloads
open Atp_util

let check = Alcotest.check

(* --- Bimodal ---------------------------------------------------------- *)

let test_bimodal_in_range () =
  let rng = Prng.create ~seed:1 () in
  let w = Bimodal.create ~hot_pages:64 ~virtual_pages:4096 rng in
  let trace = Workload.generate w 10_000 in
  Array.iter
    (fun p -> check Alcotest.bool "page in range" true (p >= 0 && p < 4096))
    trace

let test_bimodal_concentration () =
  let rng = Prng.create ~seed:2 () in
  let w =
    Bimodal.create ~hot_fraction:0.99 ~hot_pages:64 ~virtual_pages:65536 rng
  in
  let trace = Workload.generate w 50_000 in
  let s = Trace.summarize trace in
  (* 99% of accesses in 64 pages: the footprint stays small relative to
     the address space even after 50k accesses. *)
  check Alcotest.bool "footprint small" true (s.Trace.footprint < 1_000);
  check Alcotest.int "length" 50_000 s.Trace.length

let test_bimodal_rejects_oversized_hot () =
  let rng = Prng.create () in
  Alcotest.check_raises "hot too big"
    (Invalid_argument "Bimodal.create: hot region does not fit") (fun () ->
      ignore (Bimodal.create ~hot_pages:10 ~virtual_pages:5 rng))

(* --- Graph walk -------------------------------------------------------- *)

let test_graph_walk_in_range () =
  let rng = Prng.create ~seed:3 () in
  let w = Graph_walk.create ~virtual_pages:10_000 rng in
  let trace = Workload.generate w 20_000 in
  Array.iter
    (fun p -> check Alcotest.bool "in range" true (p >= 0 && p < 10_000))
    trace

let test_graph_walk_edges_deterministic () =
  (* Two walks with the same seed traverse the same graph and make the
     same moves. *)
  let mk () =
    let rng = Prng.create ~seed:4 () in
    Workload.generate (Graph_walk.create ~virtual_pages:5_000 rng) 2_000
  in
  check Alcotest.(array int) "identical traces" (mk ()) (mk ())

let test_graph_walk_skewed () =
  (* With alpha = 0.01 the destination distribution is heavy on low
     page ids; the walk should revisit a relatively small core. *)
  let rng = Prng.create ~seed:5 () in
  let w = Graph_walk.create ~virtual_pages:100_000 rng in
  let trace = Workload.generate w 50_000 in
  let s = Trace.summarize trace in
  check Alcotest.bool "revisits a core" true (s.Trace.footprint < 50_000)

(* --- Kronecker / graph500 ---------------------------------------------- *)

let test_kronecker_csr_valid () =
  let rng = Prng.create ~seed:6 () in
  let g = Kronecker.generate ~scale:10 ~edge_factor:8 rng in
  check Alcotest.int "vertices" 1024 g.Kronecker.vertices;
  check Alcotest.int "xadj length" 1025 (Array.length g.Kronecker.xadj);
  check Alcotest.int "stored edges = 2x generated" (2 * 8 * 1024)
    (Array.length g.Kronecker.adj);
  (* Row offsets are monotone and end at the edge count. *)
  for v = 0 to 1023 do
    check Alcotest.bool "monotone" true
      (g.Kronecker.xadj.(v) <= g.Kronecker.xadj.(v + 1))
  done;
  check Alcotest.int "offsets cover adj" (Array.length g.Kronecker.adj)
    g.Kronecker.xadj.(1024);
  Array.iter
    (fun n -> check Alcotest.bool "neighbor in range" true (n >= 0 && n < 1024))
    g.Kronecker.adj

let test_kronecker_skewed_degrees () =
  let rng = Prng.create ~seed:7 () in
  let g = Kronecker.generate ~scale:10 ~edge_factor:8 rng in
  let max_deg = ref 0 in
  for v = 0 to g.Kronecker.vertices - 1 do
    max_deg := max !max_deg (Kronecker.degree g v)
  done;
  (* R-MAT hubs: the max degree dwarfs the average (16). *)
  check Alcotest.bool "power-law hubs" true (!max_deg > 100)

let test_kronecker_symmetric () =
  let rng = Prng.create ~seed:8 () in
  let g = Kronecker.generate ~scale:6 ~edge_factor:4 rng in
  (* Every directed edge has its reverse. *)
  let count = Hashtbl.create 256 in
  let bump u v delta =
    let key = (u * g.Kronecker.vertices) + v in
    Hashtbl.replace count key (delta + Option.value (Hashtbl.find_opt count key) ~default:0)
  in
  for u = 0 to g.Kronecker.vertices - 1 do
    Array.iter (fun v -> bump u v 1) (Kronecker.out_neighbors g u)
  done;
  Hashtbl.iter
    (fun key c ->
      let u = key / g.Kronecker.vertices and v = key mod g.Kronecker.vertices in
      let reverse =
        Option.value
          (Hashtbl.find_opt count ((v * g.Kronecker.vertices) + u))
          ~default:0
      in
      check Alcotest.int "reverse multiplicity" c reverse)
    count

let test_graph500_trace_in_footprint () =
  let rng = Prng.create ~seed:9 () in
  let w, layout = Graph500.create ~scale:10 ~edge_factor:8 rng in
  check Alcotest.int "virtual pages = footprint" layout.Graph500.total_pages
    w.Workload.virtual_pages;
  let trace = Workload.generate w 30_000 in
  Array.iter
    (fun p ->
      check Alcotest.bool "page within layout" true
        (p >= 0 && p < layout.Graph500.total_pages))
    trace

let test_graph500_layout_disjoint () =
  let rng = Prng.create ~seed:10 () in
  let g = Kronecker.generate ~scale:10 ~edge_factor:8 rng in
  let l = Graph500.layout_of g in
  check Alcotest.bool "ordered regions" true
    (l.Graph500.xadj_base < l.Graph500.adj_base
     && l.Graph500.adj_base < l.Graph500.visited_base
     && l.Graph500.visited_base < l.Graph500.queue_base
     && l.Graph500.queue_base < l.Graph500.parent_base
     && l.Graph500.parent_base < l.Graph500.total_pages)

let test_graph500_touches_all_regions () =
  let rng = Prng.create ~seed:11 () in
  let w, l = Graph500.create ~scale:9 ~edge_factor:8 rng in
  let trace = Workload.generate w 50_000 in
  let touches lo hi =
    Array.exists (fun p -> p >= lo && p < hi) trace
  in
  check Alcotest.bool "xadj touched" true (touches l.Graph500.xadj_base l.Graph500.adj_base);
  check Alcotest.bool "adj touched" true (touches l.Graph500.adj_base l.Graph500.visited_base);
  check Alcotest.bool "visited touched" true
    (touches l.Graph500.visited_base l.Graph500.queue_base);
  check Alcotest.bool "queue touched" true
    (touches l.Graph500.queue_base l.Graph500.parent_base);
  check Alcotest.bool "parent touched" true
    (touches l.Graph500.parent_base l.Graph500.total_pages)

(* --- Simple workloads --------------------------------------------------- *)

let test_sequential () =
  let w = Simple.sequential ~virtual_pages:5 () in
  check Alcotest.(array int) "wraps" [| 0; 1; 2; 3; 4; 0; 1 |]
    (Workload.generate w 7)

let test_strided () =
  let w = Simple.strided ~stride:3 ~virtual_pages:7 () in
  check Alcotest.(array int) "stride mod wrap" [| 0; 3; 6; 2; 5; 1; 4; 0 |]
    (Workload.generate w 8)

let test_looping () =
  let w = Simple.looping ~window:3 ~virtual_pages:100 () in
  check Alcotest.(array int) "loops window" [| 0; 1; 2; 0; 1; 2 |]
    (Workload.generate w 6)

let test_zipf_workload () =
  let rng = Prng.create ~seed:12 () in
  let w = Simple.zipf ~virtual_pages:1_000 rng in
  let trace = Workload.generate w 10_000 in
  Array.iter
    (fun p -> check Alcotest.bool "in range" true (p >= 0 && p < 1_000))
    trace

(* --- Trace IO ------------------------------------------------------------ *)

let with_temp_file f =
  let path = Filename.temp_file "atp_trace" ".dat" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_trace_text_roundtrip () =
  with_temp_file (fun path ->
      let trace = [| 5; 0; 123456; 7; 7 |] in
      Trace.save_text path trace;
      check Alcotest.(array int) "roundtrip" trace (Trace.load_text path))

let test_trace_text_comments () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "# header\n1\n\n2\n# trailing\n3\n";
      close_out oc;
      check Alcotest.(array int) "skips comments" [| 1; 2; 3 |]
        (Trace.load_text path))

let test_trace_binary_roundtrip () =
  with_temp_file (fun path ->
      let rng = Prng.create ~seed:13 () in
      let trace = Array.init 1_000 (fun _ -> Prng.int rng 1_000_000) in
      Trace.save_binary path trace;
      check Alcotest.(array int) "roundtrip" trace (Trace.load_binary path))

let test_trace_binary_bad_magic () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "NOPE00000000";
      close_out oc;
      Alcotest.check_raises "bad magic"
        (Trace.Parse_error { path; what = "bad magic" })
        (fun () -> ignore (Trace.load_binary path)))

let test_trace_summary () =
  let s = Trace.summarize [| 3; 1; 4; 1; 5 |] in
  check Alcotest.int "length" 5 s.Trace.length;
  check Alcotest.int "footprint" 4 s.Trace.footprint;
  check Alcotest.int "min" 1 s.Trace.min_page;
  check Alcotest.int "max" 5 s.Trace.max_page

(* --- Mix specs --------------------------------------------------------- *)

let mix_spec_components =
  [|
    (fun rng -> Simple.uniform ~virtual_pages:100 rng);
    (fun rng -> Mix.offset ~by:1000 (Simple.uniform ~virtual_pages:100 rng));
  |]

let test_mix_spec_deterministic () =
  let s = Mix.spec mix_spec_components in
  let gen seed =
    Workload.generate (Mix.instantiate s (Prng.create ~seed ())) 2_000
  in
  check (Alcotest.array Alcotest.int) "same seed, same stream" (gen 5) (gen 5);
  check Alcotest.bool "different seed, different stream" true (gen 5 <> gen 6)

let test_mix_spec_component_independence () =
  (* Swap out the second component: the first one's subsequence —
     identifiable because the components live in disjoint page ranges —
     must not move by a single sample.  (Building both components on
     one shared generator, the pre-spec idiom, fails this: every draw
     for component 1 would shift component 0's stream.) *)
  let first rng = Simple.uniform ~virtual_pages:100 rng in
  let with_second second = Mix.spec [| first; second |] in
  let low s =
    let w = Mix.instantiate s (Prng.create ~seed:9 ()) in
    List.filter (fun p -> p < 1000) (Array.to_list (Workload.generate w 4_000))
  in
  let a =
    low
      (with_second (fun rng ->
           Mix.offset ~by:1000 (Simple.uniform ~virtual_pages:100 rng)))
  in
  let b =
    low
      (with_second (fun rng ->
           Mix.offset ~by:1000 (Simple.zipf ~virtual_pages:100 rng)))
  in
  check (Alcotest.list Alcotest.int) "component 0 unchanged" a b

let test_mix_spec_validation () =
  Alcotest.check_raises "no components"
    (Invalid_argument "Mix.spec: no components") (fun () ->
      ignore (Mix.spec [||]));
  Alcotest.check_raises "weight mismatch"
    (Invalid_argument "Mix.spec: weight mismatch") (fun () ->
      ignore (Mix.spec ~weights:[| 1.0 |] mix_spec_components));
  let s = Mix.spec ~name:"named" ~weights:[| 1.0; 1.0 |] mix_spec_components in
  check Alcotest.string "spec name" "named" (Mix.spec_name s);
  let w = Mix.instantiate s (Prng.create ~seed:1 ()) in
  check Alcotest.string "workload name" "named" w.Workload.name

let () =
  Alcotest.run "atp.workloads"
    [
      ( "bimodal",
        [
          Alcotest.test_case "range" `Quick test_bimodal_in_range;
          Alcotest.test_case "concentration" `Quick test_bimodal_concentration;
          Alcotest.test_case "rejects oversized hot" `Quick test_bimodal_rejects_oversized_hot;
        ] );
      ( "graph_walk",
        [
          Alcotest.test_case "range" `Quick test_graph_walk_in_range;
          Alcotest.test_case "deterministic" `Quick test_graph_walk_edges_deterministic;
          Alcotest.test_case "skewed" `Quick test_graph_walk_skewed;
        ] );
      ( "kronecker",
        [
          Alcotest.test_case "csr valid" `Quick test_kronecker_csr_valid;
          Alcotest.test_case "hub degrees" `Quick test_kronecker_skewed_degrees;
          Alcotest.test_case "symmetric" `Quick test_kronecker_symmetric;
        ] );
      ( "graph500",
        [
          Alcotest.test_case "trace in footprint" `Quick test_graph500_trace_in_footprint;
          Alcotest.test_case "layout disjoint" `Quick test_graph500_layout_disjoint;
          Alcotest.test_case "touches all regions" `Quick test_graph500_touches_all_regions;
        ] );
      ( "simple",
        [
          Alcotest.test_case "sequential" `Quick test_sequential;
          Alcotest.test_case "strided" `Quick test_strided;
          Alcotest.test_case "looping" `Quick test_looping;
          Alcotest.test_case "zipf" `Quick test_zipf_workload;
        ] );
      ( "mix-spec",
        [
          Alcotest.test_case "deterministic under a seed" `Quick
            test_mix_spec_deterministic;
          Alcotest.test_case "component independence" `Quick
            test_mix_spec_component_independence;
          Alcotest.test_case "validation and naming" `Quick
            test_mix_spec_validation;
        ] );
      ( "trace",
        [
          Alcotest.test_case "text roundtrip" `Quick test_trace_text_roundtrip;
          Alcotest.test_case "text comments" `Quick test_trace_text_comments;
          Alcotest.test_case "binary roundtrip" `Quick test_trace_binary_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_trace_binary_bad_magic;
          Alcotest.test_case "summary" `Quick test_trace_summary;
        ] );
    ]
