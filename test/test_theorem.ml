(* Property tests of the Simulation Theorem machinery: the mirroring
   invariants across arbitrary policy choices, the cost identity, and
   survival under injected paging failures. *)

open Atp_core
open Atp_paging
open Atp_util

let check = Alcotest.check

let policy_gen =
  (* All registered policies: each instance is seeded deterministically
     so the mirror instance reproduces the same decisions. *)
  QCheck.Gen.oneofl Registry.all

let arbitrary_policy =
  QCheck.make ~print:(fun (module P : Policy.S) -> P.name) policy_gen

let mk_instance (module P : Policy.S) ~capacity =
  Policy.instantiate (module P) ~rng:(Prng.create ~seed:77 ()) ~capacity ()

let prop_z_mirrors_any_policies =
  QCheck.Test.make ~count:40
    ~name:"Z mirrors X and Y for every registered policy pair"
    QCheck.(
      triple arbitrary_policy arbitrary_policy
        (list_of_size (Gen.return 400) (int_bound 700)))
    (fun (xp, yp, pages) ->
      let params = Params.derive ~p:2048 ~w:64 () in
      let budget = min 256 (Params.usable_pages params) in
      let trace = Array.of_list pages in
      let z =
        Simulation.create ~params
          ~x:(mk_instance xp ~capacity:32)
          ~y:(mk_instance yp ~capacity:budget)
          ()
      in
      Array.iter (Simulation.access z) trace;
      let r = Simulation.report z in
      let x_stats =
        Sim.run (mk_instance xp ~capacity:32)
          (Simulation.huge_trace ~h_max:params.Params.h_max trace)
      in
      let y_stats = Sim.run (mk_instance yp ~capacity:budget) trace in
      r.Simulation.tlb_fills = x_stats.Sim.misses
      && r.Simulation.ios = y_stats.Sim.misses
      && r.Simulation.accesses = Array.length trace)

let prop_cost_identity =
  QCheck.Test.make ~count:50
    ~name:"C(Z) = C_IO + eps * (tlb fills + decoding misses)"
    QCheck.(pair (float_range 0.0001 0.999) (list_of_size (Gen.return 300) (int_bound 999)))
    (fun (epsilon, pages) ->
      let params = Params.derive ~p:1024 ~w:64 () in
      let budget = Params.usable_pages params in
      let z =
        Simulation.create ~params
          ~x:(mk_instance (module Lru) ~capacity:16)
          ~y:(mk_instance (module Lru) ~capacity:budget)
          ()
      in
      List.iter (Simulation.access z) pages;
      let r = Simulation.report z in
      let lhs = Simulation.cost ~epsilon r in
      let rhs =
        Simulation.c_io r
        +. (epsilon
            *. float_of_int (r.Simulation.tlb_fills + r.Simulation.decoding_misses))
      in
      abs_float (lhs -. rhs) < 1e-9)

(* Failure injection: a sabotaged geometry (buckets of 2, one choice)
   makes paging failures routine; Z must keep answering every request,
   count the failures as decoding misses, and keep the mirroring
   invariants intact. *)
let test_z_survives_pathological_allocator () =
  let good = Params.derive ~scheme:Params.One_choice ~p:1024 ~w:64 () in
  let params =
    { good with Params.bucket_size = 2; buckets = 512; tau = 2; k = 1 }
  in
  let budget = Params.usable_pages params in
  let rng = Prng.create ~seed:5 () in
  let trace = Array.init 20_000 (fun _ -> Prng.int rng 2_000) in
  let x = mk_instance (module Lru) ~capacity:64 in
  let y = mk_instance (module Lru) ~capacity:budget in
  let z = Simulation.create ~params ~x ~y () in
  Array.iter (Simulation.access z) trace;
  let r = Simulation.report z in
  check Alcotest.bool "failures were injected" true
    (r.Simulation.failures_total > 0);
  check Alcotest.bool "accessed failures become decoding misses" true
    (r.Simulation.decoding_misses > 0);
  (* The mirrors still hold exactly. *)
  let y_stats = Sim.run (mk_instance (module Lru) ~capacity:budget) trace in
  check Alcotest.int "ios still = Y misses" y_stats.Sim.misses r.Simulation.ios;
  check Alcotest.int "every access serviced" 20_000 r.Simulation.accesses

let test_z_failures_recover () =
  (* After churn drains the overloaded buckets, new placements succeed
     again: failures are transient, not sticky. *)
  let good = Params.derive ~scheme:Params.One_choice ~p:256 ~w:64 () in
  let params =
    { good with Params.bucket_size = 4; buckets = 64; tau = 4; k = 1 }
  in
  let d = Decoupled.create params in
  (* Overfill: park pages until fallbacks appear. *)
  let page = ref 0 in
  while Alloc.failures_total (Decoupled.alloc d) = 0 do
    ignore (Decoupled.ram_insert d !page);
    incr page
  done;
  let live = Decoupled.active d in
  (* Evict everything. *)
  for v = 0 to !page - 1 do
    if Alloc.mem (Decoupled.alloc d) v then Decoupled.ram_evict d v
  done;
  check Alcotest.int "drained" 0 (Decoupled.active d);
  check Alcotest.bool "had failures" true (live > 0);
  (* A fresh insert now placeable without fallback. *)
  Decoupled.ram_insert d 999_999;
  match Alloc.location_of (Decoupled.alloc d) 999_999 with
  | Some (Alloc.Placed _) -> ()
  | Some (Alloc.Fallback _) | None -> Alcotest.fail "allocator did not recover"

let prop_hybrid_chunk1_equals_simulation =
  QCheck.Test.make ~count:30 ~name:"hybrid with chunk=1 = plain decoupling"
    QCheck.(list_of_size (Gen.return 300) (int_bound 800))
    (fun pages ->
      let ram = 2048 in
      let h = Hybrid.create ~seed:3 ~ram_pages:ram ~chunk:1 ~w:64 ~tlb_entries:32 () in
      List.iter (Hybrid.access h) pages;
      let hr = Hybrid.report h in
      let params = Params.derive ~p:ram ~w:64 () in
      let z =
        Simulation.create ~seed:3 ~params
          ~x:(Policy.instantiate (module Lru) ~capacity:32 ())
          ~y:(Policy.instantiate (module Lru) ~capacity:(Params.usable_pages params) ())
          ()
      in
      List.iter (Simulation.access z) pages;
      let zr = Simulation.report z in
      hr.Hybrid.ios = zr.Simulation.ios
      && hr.Hybrid.tlb_fills = zr.Simulation.tlb_fills
      && hr.Hybrid.coverage = params.Params.h_max)

let prop_hybrid_io_amplification_is_chunk =
  QCheck.Test.make ~count:30 ~name:"hybrid IOs = chunk * chunk faults"
    QCheck.(pair (int_range 0 2) (list_of_size (Gen.return 200) (int_bound 3000)))
    (fun (chunk_log, pages) ->
      let chunk = 1 lsl chunk_log in
      let h =
        Hybrid.create ~ram_pages:2048 ~chunk ~w:64 ~tlb_entries:32 ()
      in
      List.iter (Hybrid.access h) pages;
      let r = Hybrid.report h in
      r.Hybrid.ios = chunk * r.Hybrid.chunk_faults)

(* --- Multicore decoupling ------------------------------------------- *)

let test_smp_decoupled_basics () =
  let params = Params.derive ~p:2048 ~w:64 () in
  let y =
    Policy.instantiate (module Lru) ~capacity:(Params.usable_pages params) ()
  in
  let t =
    Smp_decoupled.create ~params ~cores:2 ~tlb_entries_per_core:16 ~y ()
  in
  check Alcotest.int "cores" 2 (Smp_decoupled.cores t);
  (* Same page from both cores: one IO (shared RAM), two TLB fills. *)
  Smp_decoupled.access t ~core:0 100;
  Smp_decoupled.access t ~core:1 100;
  let r = Smp_decoupled.report t in
  check Alcotest.int "one IO" 1 r.Smp_decoupled.ios;
  check Alcotest.int "two fills" 2 r.Smp_decoupled.tlb_fills;
  check Alcotest.int "no decode faults" 0 r.Smp_decoupled.decoding_misses

let test_smp_decoupled_psi_ipis () =
  (* A residency change to a huge page another core covers costs a
     remote update. *)
  let params = Params.derive ~p:2048 ~w:64 () in
  let h_max = params.Params.h_max in
  let y =
    Policy.instantiate (module Lru) ~capacity:(Params.usable_pages params) ()
  in
  let t =
    Smp_decoupled.create ~params ~cores:2 ~tlb_entries_per_core:16 ~y ()
  in
  (* Core 1 covers huge page 0 by touching its first page; then core 0
     faults a sibling page of the same huge page. *)
  Smp_decoupled.access t ~core:1 0;
  let before = (Smp_decoupled.report t).Smp_decoupled.psi_update_ipis in
  Smp_decoupled.access t ~core:0 1;
  let after = (Smp_decoupled.report t).Smp_decoupled.psi_update_ipis in
  check Alcotest.bool "remote holder notified" true (after > before);
  ignore h_max

let test_smp_decoupled_mirrors_y () =
  let params = Params.derive ~p:2048 ~w:64 () in
  let budget = min 128 (Params.usable_pages params) in
  let rng = Prng.create ~seed:21 () in
  let trace = Array.init 10_000 (fun _ -> Prng.int rng 1_000) in
  let y = Policy.instantiate (module Lru) ~capacity:budget () in
  let t =
    Smp_decoupled.create ~params ~cores:4 ~tlb_entries_per_core:32 ~y ()
  in
  let r = Smp_decoupled.run_shared t trace in
  let y_ref = Policy.instantiate (module Lru) ~capacity:budget () in
  let y_stats = Sim.run y_ref trace in
  check Alcotest.int "ios = shared Y misses" y_stats.Sim.misses
    r.Smp_decoupled.ios;
  check Alcotest.int "all accesses" 10_000 r.Smp_decoupled.accesses

let test_trace_replay_workload () =
  let open Atp_workloads in
  let w = Trace.replay [| 5; 6; 7 |] in
  check Alcotest.(array int) "loops" [| 5; 6; 7; 5; 6 |] (Workload.generate w 5);
  let w = Trace.replay ~loop:false [| 1 |] in
  check Alcotest.int "first" 1 (w.Workload.next ());
  check Alcotest.bool "raises at end" true
    (try
       ignore (w.Workload.next ());
       false
     with End_of_file -> true)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "atp.theorem"
    [
      ( "simulation-properties",
        qsuite [ prop_z_mirrors_any_policies; prop_cost_identity ] );
      ( "failure-injection",
        [
          Alcotest.test_case "Z survives pathological allocator" `Quick
            test_z_survives_pathological_allocator;
          Alcotest.test_case "failures recover after churn" `Quick
            test_z_failures_recover;
        ] );
      ( "hybrid-properties",
        qsuite
          [ prop_hybrid_chunk1_equals_simulation; prop_hybrid_io_amplification_is_chunk ] );
      ( "smp-decoupled",
        [
          Alcotest.test_case "basics" `Quick test_smp_decoupled_basics;
          Alcotest.test_case "psi update ipis" `Quick test_smp_decoupled_psi_ipis;
          Alcotest.test_case "mirrors Y" `Quick test_smp_decoupled_mirrors_y;
          Alcotest.test_case "trace replay workload" `Quick test_trace_replay_workload;
        ] );
    ]
