(* The differential harness for the sharded streaming engine: sharded
   replay must reproduce exact sequential replay when the warm-up
   window covers each epoch's prefix, stay within the documented error
   bound otherwise, and the streamed trace format must round-trip
   byte-for-byte.

   The shard count is taken from ATP_SHARDS (CI runs the suite with
   ATP_SHARDS=4 on the multicore job); on OCaml 4.x the Parallel
   fallback replays the same epochs sequentially and every assertion
   here still holds, because the merge is in stream order. *)

open Atp_util
open Atp_core
open Atp_paging
open Atp_workloads
module Engine = Atp_engine.Engine

let check = Alcotest.check

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let shards =
  match Option.bind (Sys.getenv_opt "ATP_SHARDS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | Some _ | None -> 2

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let params = Params.derive ~p:2048 ~w:64 ()

let policies = [ "lru"; "fifo"; "2q" ]

(* Deterministic simulator factory: every Prng is created inside the
   closure from a constant seed, so concurrent calls from worker
   domains build identical simulators.  Y's capacity (256) is far
   below one epoch's worth of references, so an epoch-sized warm-up
   window can actually fill the caches — the adequacy condition the
   documented error bound is stated under. *)
let make_sim ~policy () =
  let p = Registry.find_exn policy in
  let x =
    Policy.instantiate p ~rng:(Prng.create ~seed:11 ()) ~capacity:64 ()
  in
  let y =
    Policy.instantiate p ~rng:(Prng.create ~seed:13 ()) ~capacity:256 ()
  in
  Simulation.create ~seed:7 ~params ~x ~y ()

let trace_of ~seed ~n = function
  | "simple" ->
    Workload.generate (Simple.zipf ~virtual_pages:4096 (Prng.create ~seed ())) n
  | "bimodal" ->
    Workload.generate
      (Bimodal.create ~hot_pages:64 ~virtual_pages:4096 (Prng.create ~seed ()))
      n
  | "graph_walk" ->
    Workload.generate
      (Graph_walk.create ~virtual_pages:4096 (Prng.create ~seed ()))
      n
  | w -> invalid_arg w

let workload_names = [ "simple"; "bimodal"; "graph_walk" ]

let totals_testable =
  let pp ppf (t : Engine.totals) = Engine.pp_totals ppf t in
  let eq (a : Engine.totals) (b : Engine.totals) =
    a.Engine.accesses = b.Engine.accesses
    && a.Engine.ios = b.Engine.ios
    && a.Engine.tlb_fills = b.Engine.tlb_fills
    && a.Engine.decoding_misses = b.Engine.decoding_misses
    && a.Engine.failures = b.Engine.failures
  in
  Alcotest.testable pp eq

let sequential ~policy trace =
  Engine.replay_sequential ~make_sim:(make_sim ~policy)
    (Engine.source_of_array trace)

let sharded ~policy ~epoch_len ~warmup trace =
  Engine.replay
    ~config:{ Engine.shards; epoch_len; warmup; domains = None }
    ~make_sim:(make_sim ~policy)
    (Engine.source_of_array trace)

(* ------------------------------------------------------------------ *)
(* Exact equivalence when warm-up covers every epoch prefix            *)
(* ------------------------------------------------------------------ *)

(* warmup >= n: every epoch's warm-up window is its whole prefix, so
   the fresh simulator reaches the sequential simulator's state and
   each counter matches exactly — for every policy and workload. *)
let test_exact_full_warmup () =
  let n = 6_000 in
  List.iter
    (fun wname ->
      let trace = trace_of ~seed:42 ~n wname in
      List.iter
        (fun policy ->
          let seq = sequential ~policy trace in
          let sh = sharded ~policy ~epoch_len:1_500 ~warmup:n trace in
          check totals_testable
            (Printf.sprintf "%s/%s full-warmup sharded = sequential" wname
               policy)
            seq sh;
          check (Alcotest.float 0.)
            (Printf.sprintf "%s/%s cost" wname policy)
            (Engine.cost ~epsilon:0.01 seq)
            (Engine.cost ~epsilon:0.01 sh))
        policies)
    workload_names

(* Two epochs with warmup >= epoch_len: epoch 0 has no prefix, epoch
   1's prefix is exactly epoch 0 and fits the window — exact, the
   "single epoch-boundary" case of the documented model. *)
let test_exact_single_boundary () =
  let n = 4_000 in
  let epoch_len = 2_000 in
  List.iter
    (fun wname ->
      let trace = trace_of ~seed:9 ~n wname in
      List.iter
        (fun policy ->
          let seq = sequential ~policy trace in
          let sh = sharded ~policy ~epoch_len ~warmup:epoch_len trace in
          check totals_testable
            (Printf.sprintf "%s/%s two-epoch sharded = sequential" wname policy)
            seq sh)
        policies)
    workload_names

(* A ragged final epoch (n not a multiple of epoch_len) must not drop
   or duplicate references. *)
let test_exact_ragged_tail () =
  let n = 5_321 in
  let trace = trace_of ~seed:4 ~n "simple" in
  let seq = sequential ~policy:"lru" trace in
  let sh = sharded ~policy:"lru" ~epoch_len:1_700 ~warmup:n trace in
  check totals_testable "ragged tail exact" seq sh;
  check Alcotest.int "every reference measured" n sh.Engine.accesses;
  check Alcotest.int "epoch count" 4 sh.Engine.epochs

(* ------------------------------------------------------------------ *)
(* Bounded error on multi-epoch configs                                *)
(* ------------------------------------------------------------------ *)

let rel_err a b = if b = 0. then abs_float a else abs_float (a -. b) /. b

let test_bounded_multi_epoch () =
  let n = 12_000 in
  let epoch_len = 1_500 in
  List.iter
    (fun wname ->
      let trace = trace_of ~seed:21 ~n wname in
      List.iter
        (fun policy ->
          let seq = sequential ~policy trace in
          let sh = sharded ~policy ~epoch_len ~warmup:epoch_len trace in
          check Alcotest.int
            (Printf.sprintf "%s/%s accesses are exact" wname policy)
            seq.Engine.accesses sh.Engine.accesses;
          let e =
            rel_err
              (Engine.cost ~epsilon:0.01 sh)
              (Engine.cost ~epsilon:0.01 seq)
          in
          check Alcotest.bool
            (Printf.sprintf "%s/%s cost error %.4f <= %.2f" wname policy e
               Engine.documented_error_bound)
            true
            (e <= Engine.documented_error_bound))
        policies)
    workload_names

(* Shard count must never change the answer, only the schedule. *)
let test_shards_invariant () =
  let n = 8_000 in
  let trace = trace_of ~seed:3 ~n "bimodal" in
  let run shards =
    Engine.replay
      ~config:{ Engine.shards; epoch_len = 1_000; warmup = 1_000; domains = None }
      ~make_sim:(make_sim ~policy:"lru")
      (Engine.source_of_array trace)
  in
  let one = run 1 in
  List.iter
    (fun s ->
      check totals_testable
        (Printf.sprintf "shards=%d = shards=1" s)
        one (run s))
    [ 2; 3; 4; 8 ]

(* Streaming from a packed file and from the in-memory array are the
   same replay. *)
let test_stream_source_equivalence () =
  let n = 7_000 in
  let trace = trace_of ~seed:17 ~n "graph_walk" in
  let path = Filename.temp_file "atp_engine" ".atps" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.Stream.pack_array ~chunk_size:512 path trace;
      let from_mem = sharded ~policy:"lru" ~epoch_len:2_000 ~warmup:2_000 trace in
      let from_file =
        Engine.replay
          ~config:
            { Engine.shards; epoch_len = 2_000; warmup = 2_000; domains = None }
          ~make_sim:(make_sim ~policy:"lru")
          (Trace.Stream.source path)
      in
      check totals_testable "file stream = array stream" from_mem from_file)

(* ------------------------------------------------------------------ *)
(* Streamed format round-trip                                          *)
(* ------------------------------------------------------------------ *)

let with_temp f =
  let path = Filename.temp_file "atp_trace" ".tmp" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* pack -> stream -> cat: writing any generated trace as text, packing
   the text into ATPS, streaming it back, and re-rendering as text
   must reproduce the original file byte-for-byte. *)
let prop_pack_stream_cat_roundtrip =
  QCheck.Test.make ~name:"pack -> stream -> cat round-trips byte-for-byte"
    ~count:100
    QCheck.(
      pair (int_range 1 64)
        (list_of_size Gen.(int_range 0 500) (int_bound 1_000_000)))
    (fun (chunk_size, pages) ->
      let trace = Array.of_list pages in
      with_temp (fun text_path ->
          with_temp (fun packed_path ->
              with_temp (fun out_path ->
                  Trace.save_text text_path trace;
                  Trace.pack ~chunk_size ~src:text_path ~dst:packed_path ();
                  let streamed = Trace.Stream.to_array packed_path in
                  Trace.save_text out_path streamed;
                  String.equal (read_file text_path) (read_file out_path)))))

(* Deltas can be negative and large; the zigzag varints must carry
   them. *)
let prop_stream_array_roundtrip =
  QCheck.Test.make ~name:"Stream.pack_array/to_array round-trip" ~count:100
    QCheck.(
      pair (int_range 1 32)
        (list_of_size
           Gen.(int_range 0 300)
           (make ~print:string_of_int
              Gen.(
                oneof
                  [
                    int_bound 100;
                    int_bound 1_000_000_000;
                    map (fun n -> (1 lsl 52) + n) (int_bound 1_000);
                  ]))))
    (fun (chunk_size, pages) ->
      let trace = Array.of_list pages in
      with_temp (fun path ->
          Trace.Stream.pack_array ~chunk_size path trace;
          let back = Trace.Stream.to_array path in
          let h = Trace.Stream.with_reader path Trace.Stream.header in
          h.Trace.Stream.length = Array.length trace
          && h.Trace.Stream.chunk_size = chunk_size
          && Array.length back = Array.length trace
          && Array.for_all2 ( = ) back trace))

let test_stream_errors () =
  with_temp (fun path ->
      let oc = open_out_bin path in
      output_string oc "NOPE";
      close_out oc;
      check Alcotest.bool "bad magic raises" true
        (match Trace.Stream.to_array path with
        | exception Trace.Parse_error _ -> true
        | _ -> false));
  with_temp (fun path ->
      let oc = open_out_bin path in
      output_string oc "ATPS\001";
      close_out oc;
      check Alcotest.bool "truncated header raises" true
        (match Trace.Stream.to_array path with
        | exception Trace.Parse_error _ -> true
        | _ -> false));
  with_temp (fun path ->
      Trace.Stream.pack_array ~chunk_size:8 path (Array.init 100 (fun i -> i));
      let whole = read_file path in
      let oc = open_out_bin path in
      output_string oc (String.sub whole 0 (String.length whole - 3));
      close_out oc;
      check Alcotest.bool "truncated body raises" true
        (match Trace.Stream.to_array path with
        | exception Trace.Parse_error _ -> true
        | _ -> false))

let test_stream_empty () =
  with_temp (fun path ->
      Trace.Stream.pack_array path [||];
      check (Alcotest.array Alcotest.int) "empty trace round-trips" [||]
        (Trace.Stream.to_array path);
      check Alcotest.bool "source is immediately exhausted" true
        (Option.is_none (Trace.Stream.source path ())))

(* ------------------------------------------------------------------ *)
(* load_text regressions                                               *)
(* ------------------------------------------------------------------ *)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let test_load_text_edge_cases () =
  with_temp (fun path ->
      write_file path "";
      check (Alcotest.array Alcotest.int) "empty file" [||]
        (Trace.load_text path));
  with_temp (fun path ->
      write_file path "# only\n# comments\n\n";
      check (Alcotest.array Alcotest.int) "comments-only file" [||]
        (Trace.load_text path));
  with_temp (fun path ->
      write_file path "1\n2\n3\n";
      check (Alcotest.array Alcotest.int) "trailing newline" [| 1; 2; 3 |]
        (Trace.load_text path));
  with_temp (fun path ->
      write_file path "1\n2\n3";
      check (Alcotest.array Alcotest.int) "no trailing newline" [| 1; 2; 3 |]
        (Trace.load_text path));
  with_temp (fun path ->
      write_file path "1\nnope\n";
      check Alcotest.bool "bad line raises" true
        (match Trace.load_text path with
        | exception Trace.Parse_error _ -> true
        | _ -> false))

(* workload_of_file opens the file once and dispatches all three
   formats; a text file shorter than the 4 magic bytes must still
   parse. *)
let test_workload_of_file_dispatch () =
  let trace = [| 5; 6; 7; 5 |] in
  let first_n w n = Array.to_list (Workload.generate w n) in
  with_temp (fun path ->
      Trace.save_text path trace;
      check (Alcotest.list Alcotest.int) "text" [ 5; 6; 7; 5 ]
        (first_n (Trace.workload_of_file path) 4));
  with_temp (fun path ->
      write_file path "1\n";
      check (Alcotest.list Alcotest.int) "tiny text file" [ 1; 1 ]
        (first_n (Trace.workload_of_file path) 2));
  with_temp (fun path ->
      Trace.save_binary path trace;
      check (Alcotest.list Alcotest.int) "binary" [ 5; 6; 7; 5 ]
        (first_n (Trace.workload_of_file path) 4));
  with_temp (fun path ->
      Trace.Stream.pack_array path trace;
      check (Alcotest.list Alcotest.int) "streamed" [ 5; 6; 7; 5 ]
        (first_n (Trace.workload_of_file path) 4));
  with_temp (fun path ->
      write_file path "";
      check Alcotest.bool "empty file refuses to replay" true
        (match Trace.workload_of_file path with
        | exception Invalid_argument _ -> true
        | _ -> false))

let test_pack_from_binary_and_streamed () =
  let trace = Array.init 1_000 (fun i -> (i * 37) mod 512) in
  with_temp (fun src ->
      with_temp (fun dst ->
          Trace.save_binary src trace;
          Trace.pack ~chunk_size:64 ~src ~dst ();
          check (Alcotest.array Alcotest.int) "ATPT -> ATPS" trace
            (Trace.Stream.to_array dst)));
  with_temp (fun src ->
      with_temp (fun dst ->
          Trace.Stream.pack_array ~chunk_size:100 src trace;
          Trace.pack ~chunk_size:64 ~src ~dst ();
          check (Alcotest.array Alcotest.int) "ATPS -> ATPS rechunk" trace
            (Trace.Stream.to_array dst)))

(* ------------------------------------------------------------------ *)
(* Tenant-partitioned replay: ragged partitions                        *)
(* ------------------------------------------------------------------ *)

(* The tenant-sharded differential matrix lives in test_fleet.ml; here
   we pin down the ragged shapes: more shards than tenants (most
   partitions empty), one giant tenant dominating a partition, and a
   stream whose tenants have all departed mid-way before a second
   wave arrives. *)

let tenant_report_t : Engine.tenant_report Alcotest.testable =
  Alcotest.testable Engine.pp_tenant_report ( = )

let make_tenant_sim ~policy tenant =
  let p = Registry.find_exn policy in
  let x =
    Policy.instantiate p
      ~rng:(Prng.create ~seed:(11 + tenant) ())
      ~capacity:16 ()
  in
  let y =
    Policy.instantiate p
      ~rng:(Prng.create ~seed:(13 + tenant) ())
      ~capacity:64 ()
  in
  Simulation.create ~seed:(7 + tenant) ~params ~x ~y ()

let tenant_source_of events =
  let i = ref 0 in
  fun () ->
    if !i >= Array.length events then None
    else begin
      let e = events.(!i) in
      incr i;
      Some e
    end

(* Deterministic interleaved access burst over the given tenants. *)
let burst ~seed ~n tenants =
  let rng = Prng.create ~seed () in
  List.init n (fun _ ->
      let t = List.nth tenants (Prng.int rng (List.length tenants)) in
      Engine.Taccess { tenant = t; page = Prng.int rng 512 })

let ragged_streams =
  [
    ( "more shards than tenants",
      Array.of_list
        (List.map (fun t -> Engine.Tarrive { tenant = t }) [ 0; 1; 2 ]
        @ burst ~seed:51 ~n:400 [ 0; 1; 2 ]
        @ [ Engine.Tdepart { tenant = 1 } ]
        @ burst ~seed:52 ~n:200 [ 0; 2 ]) );
    ( "one giant tenant",
      Array.of_list
        (burst ~seed:53 ~n:40 [ 1; 2; 3; 4 ]
        @ burst ~seed:54 ~n:4_000 [ 0 ]
        @ burst ~seed:55 ~n:40 [ 1; 2; 3; 4 ]) );
    ( "all tenants departed mid-stream",
      Array.of_list
        (burst ~seed:56 ~n:300 [ 0; 1; 2; 3 ]
        @ List.map (fun t -> Engine.Tdepart { tenant = t }) [ 3; 1; 0; 2 ]
        (* a departure for a tenant nobody ever saw is ignored *)
        @ [ Engine.Tdepart { tenant = 9 } ]
        @ burst ~seed:57 ~n:300 [ 4; 5 ]) );
  ]

let test_tenant_ragged_partitions () =
  List.iter
    (fun (name, events) ->
      List.iter
        (fun policy ->
          let seq =
            Engine.replay_tenants_sequential
              ~make_sim:(make_tenant_sim ~policy)
              (tenant_source_of events)
          in
          List.iter
            (fun shard_count ->
              let sharded =
                Engine.replay_tenants ~shards:shard_count
                  ~make_sim:(make_tenant_sim ~policy) (fun () ->
                    tenant_source_of events)
              in
              check (Alcotest.list tenant_report_t)
                (Printf.sprintf "%s: %s, %d shards" name policy shard_count)
                seq sharded)
            [ 1; 2; 4; 8; shards ])
        policies)
    ragged_streams

let test_tenant_replay_validation () =
  Alcotest.check_raises "shards must be positive"
    (Invalid_argument "Engine.replay_tenants: shards must be positive")
    (fun () ->
      ignore
        (Engine.replay_tenants ~shards:0 ~make_sim:(make_tenant_sim ~policy:"lru")
           (fun () -> tenant_source_of [||])));
  Alcotest.check_raises "negative tenant id"
    (Invalid_argument "Engine: negative tenant id") (fun () ->
      ignore
        (Engine.replay_tenants_sequential
           ~make_sim:(make_tenant_sim ~policy:"lru")
           (tenant_source_of [| Engine.Taccess { tenant = -1; page = 0 } |])))

let () =
  Alcotest.run "engine"
    [
      ( "differential",
        [
          Alcotest.test_case "full warm-up is exact" `Quick
            test_exact_full_warmup;
          Alcotest.test_case "single epoch boundary is exact" `Quick
            test_exact_single_boundary;
          Alcotest.test_case "ragged tail is exact" `Quick
            test_exact_ragged_tail;
          Alcotest.test_case "multi-epoch error is bounded" `Quick
            test_bounded_multi_epoch;
          Alcotest.test_case "shard count never changes totals" `Quick
            test_shards_invariant;
          Alcotest.test_case "file stream = array stream" `Quick
            test_stream_source_equivalence;
        ] );
      ( "tenant-partitions",
        [
          Alcotest.test_case "ragged shapes match sequential" `Quick
            test_tenant_ragged_partitions;
          Alcotest.test_case "validation" `Quick test_tenant_replay_validation;
        ] );
      ( "stream-format",
        qsuite [ prop_pack_stream_cat_roundtrip; prop_stream_array_roundtrip ]
        @ [
            Alcotest.test_case "corrupt files raise Parse_error" `Quick
              test_stream_errors;
            Alcotest.test_case "empty trace" `Quick test_stream_empty;
          ] );
      ( "text-format",
        [
          Alcotest.test_case "load_text edge cases" `Quick
            test_load_text_edge_cases;
          Alcotest.test_case "workload_of_file dispatch" `Quick
            test_workload_of_file_dispatch;
          Alcotest.test_case "pack from every format" `Quick
            test_pack_from_binary_and_streamed;
        ] );
    ]
