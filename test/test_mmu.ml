(* Tests for the MMU substrate: the radix page table, the page-table
   walker with its page-walk cache, and nested (two-dimensional)
   translation. *)

open Atp_memsim

let check = Alcotest.check

(* --- Page_table ------------------------------------------------------ *)

let test_pt_map_lookup () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:42 ~frame:7 ();
  (match Page_table.lookup pt 42 with
   | Some m ->
     check Alcotest.int "frame" 7 m.Page_table.frame;
     check Alcotest.int "level" 0 m.Page_table.level;
     check Alcotest.bool "writable default" true m.Page_table.flags.Page_table.writable
   | None -> Alcotest.fail "expected mapping");
  check Alcotest.bool "absent page" true (Page_table.lookup pt 43 = None)

let test_pt_unmap () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:100 ~frame:1 ();
  check Alcotest.bool "unmap present" true (Page_table.unmap pt ~vpage:100);
  check Alcotest.bool "unmap absent" false (Page_table.unmap pt ~vpage:100);
  check Alcotest.int "no leaves" 0 (Page_table.mapped_count pt);
  (* Interior nodes are reclaimed. *)
  check Alcotest.int "only the root remains" 1 (Page_table.node_count pt)

let test_pt_duplicate_rejected () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:5 ~frame:1 ();
  Alcotest.check_raises "remap" (Invalid_argument "Page_table.map: range already mapped")
    (fun () -> Page_table.map pt ~vpage:5 ~frame:2 ())

let test_pt_huge_leaf () =
  let pt = Page_table.create () in
  (* A level-1 leaf covers 512 pages; map at vpage 512 (aligned). *)
  Page_table.map pt ~vpage:512 ~frame:1024 ~level:1 ();
  (match Page_table.lookup pt 600 with
   | Some m ->
     check Alcotest.int "covered by huge leaf" 1024 m.Page_table.frame;
     check Alcotest.int "level 1" 1 m.Page_table.level
   | None -> Alcotest.fail "huge leaf must cover");
  (* Walk terminates earlier for the huge leaf than for a base page. *)
  Page_table.map pt ~vpage:5 ~frame:1 ();
  let _, huge_visits = Page_table.walk pt 600 in
  let _, base_visits = Page_table.walk pt 5 in
  check Alcotest.int "huge walk is one level shorter" (base_visits - 1)
    huge_visits;
  check Alcotest.int "base walk visits all levels" Page_table.levels base_visits

let test_pt_huge_alignment () =
  let pt = Page_table.create () in
  Alcotest.check_raises "misaligned vpage"
    (Invalid_argument "Page_table.map: virtual page not aligned to its level")
    (fun () -> Page_table.map pt ~vpage:100 ~frame:0 ~level:1 ());
  Alcotest.check_raises "misaligned frame"
    (Invalid_argument "Page_table.map: frame not aligned to its level")
    (fun () -> Page_table.map pt ~vpage:512 ~frame:100 ~level:1 ())

let test_pt_overlap_rejected () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:512 ~frame:0 ~level:1 ();
  Alcotest.check_raises "base under huge"
    (Invalid_argument "Page_table.map: range covered by a larger mapping")
    (fun () -> Page_table.map pt ~vpage:513 ~frame:9 ());
  let pt2 = Page_table.create () in
  Page_table.map pt2 ~vpage:513 ~frame:9 ();
  Alcotest.check_raises "huge over base"
    (Invalid_argument "Page_table.map: range contains finer-grained mappings")
    (fun () -> Page_table.map pt2 ~vpage:512 ~frame:0 ~level:1 ())

let test_pt_accessed_dirty () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:9 ~frame:3 ();
  let m = Option.get (Page_table.lookup pt 9) in
  check Alcotest.bool "not accessed yet" false m.Page_table.flags.Page_table.accessed;
  ignore (Page_table.walk pt 9);
  let m = Option.get (Page_table.lookup pt 9) in
  check Alcotest.bool "accessed after walk" true m.Page_table.flags.Page_table.accessed;
  check Alcotest.bool "set dirty" true (Page_table.set_dirty pt 9);
  let m = Option.get (Page_table.lookup pt 9) in
  check Alcotest.bool "dirty" true m.Page_table.flags.Page_table.dirty;
  check Alcotest.bool "dirty on absent" false (Page_table.set_dirty pt 10)

let test_pt_clear_accessed_preserves_dirty () =
  (* Regression: CLOCK's rotation must clear only the accessed bit; a
     version that round-tripped through set_dirty re-set accessed and
     made dirty pages rotate forever. *)
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:4 ~frame:1 ();
  ignore (Page_table.walk pt 4);
  ignore (Page_table.set_dirty pt 4);
  check Alcotest.bool "clear works" true (Page_table.clear_accessed pt 4);
  let m = Option.get (Page_table.lookup pt 4) in
  check Alcotest.bool "accessed cleared" false m.Page_table.flags.Page_table.accessed;
  check Alcotest.bool "dirty preserved" true m.Page_table.flags.Page_table.dirty;
  check Alcotest.bool "absent page" false (Page_table.clear_accessed pt 5)

let test_pt_iter_order () =
  let pt = Page_table.create () in
  List.iter
    (fun (v, f) -> Page_table.map pt ~vpage:v ~frame:f ())
    [ (1000, 1); (3, 2); (70_000, 3) ];
  let seen = ref [] in
  Page_table.iter (fun ~vpage _ -> seen := vpage :: !seen) pt;
  check Alcotest.(list int) "increasing order" [ 3; 1000; 70_000 ]
    (List.rev !seen)

let prop_pt_matches_model =
  QCheck.Test.make ~name:"page table matches Hashtbl model" ~count:100
    QCheck.(list (pair (int_bound 5000) bool))
    (fun ops ->
      let pt = Page_table.create () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (v, do_map) ->
          if do_map then begin
            if not (Hashtbl.mem model v) then begin
              Page_table.map pt ~vpage:v ~frame:(v * 2) ();
              Hashtbl.replace model v (v * 2)
            end
          end
          else begin
            let removed = Page_table.unmap pt ~vpage:v in
            if removed <> Hashtbl.mem model v then failwith "unmap mismatch";
            Hashtbl.remove model v
          end)
        ops;
      Hashtbl.fold
        (fun v f acc ->
          acc
          && match Page_table.lookup pt v with
             | Some m -> m.Page_table.frame = f
             | None -> false)
        model true
      && Page_table.mapped_count pt = Hashtbl.length model)

(* --- Walker ----------------------------------------------------------- *)

let test_walker_cost_structure () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:0 ~frame:0 ();
  let w = Walker.create pt in
  let r1 = Walker.translate w 0 in
  (* Cold: all four levels fetched. *)
  check Alcotest.int "cold walk = 4 accesses" 4 r1.Walker.memory_accesses;
  (* Warm: the PWC caches the interior path; only the PTE remains. *)
  let r2 = Walker.translate w 0 in
  check Alcotest.int "warm walk = 1 access" 1 r2.Walker.memory_accesses;
  check Alcotest.bool "warm cheaper" true (r2.Walker.cycles < r1.Walker.cycles)

let test_walker_huge_leaf_cheaper () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:0 ~frame:0 ();
  Page_table.map pt ~vpage:(512 * 512) ~frame:512 ~level:1 ();
  let w = Walker.create pt in
  let base = Walker.translate w 0 in
  let huge = Walker.translate w (512 * 512) in
  check Alcotest.bool "huge cold walk shorter" true
    (huge.Walker.memory_accesses < base.Walker.memory_accesses)

let test_walker_locality_via_pwc () =
  let pt = Page_table.create () in
  for v = 0 to 63 do
    Page_table.map pt ~vpage:v ~frame:v ()
  done;
  let w = Walker.create pt in
  ignore (Walker.translate w 0);
  (* Neighbors share the whole interior path. *)
  let r = Walker.translate w 1 in
  check Alcotest.int "neighbor pays one access" 1 r.Walker.memory_accesses;
  let s = Walker.stats w in
  check Alcotest.int "two walks" 2 s.Walker.walks;
  check Alcotest.int "one PWC-assisted" 1 s.Walker.pwc_hits

let test_walker_invalidate () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:0 ~frame:0 ();
  let w = Walker.create pt in
  ignore (Walker.translate w 0);
  Walker.invalidate w;
  let r = Walker.translate w 0 in
  check Alcotest.int "flush restores cold cost" 4 r.Walker.memory_accesses

let test_walker_epsilon () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:0 ~frame:0 ();
  let w = Walker.create pt in
  ignore (Walker.translate w 0);
  (* One walk of 4 accesses x 100 cycles (+ probe costs) over a
     40,000-cycle IO: epsilon is about 0.01. *)
  let e = Walker.epsilon w ~io_latency_cycles:40_000 in
  check Alcotest.bool "epsilon near 0.01" true (e > 0.009 && e < 0.012)

let test_walker_unmapped () =
  let pt = Page_table.create () in
  let w = Walker.create pt in
  let r = Walker.translate w 12345 in
  check Alcotest.bool "no mapping" true (r.Walker.mapping = None);
  check Alcotest.bool "fault walk still costs" true (r.Walker.memory_accesses >= 1)

(* --- Walker: INVLPG-style per-page invalidation ----------------------- *)

(* Pages 0 and (1 lsl 27) share no interior prefix at any level, so
   invalidating one must leave the other's whole walk-cache path
   intact — the regression the full-flush bug destroyed. *)
let test_walker_invalidate_page_precision () =
  let pt = Page_table.create () in
  let far = 1 lsl 27 in
  Page_table.map pt ~vpage:0 ~frame:0 ();
  Page_table.map pt ~vpage:far ~frame:1 ();
  let w = Walker.create pt in
  ignore (Walker.translate w 0);
  ignore (Walker.translate w far);
  Walker.invalidate_page w 0;
  let r_far = Walker.translate w far in
  check Alcotest.int "unrelated page stays warm" 1
    r_far.Walker.memory_accesses;
  let r0 = Walker.translate w 0 in
  check Alcotest.int "invalidated page is cold" 4 r0.Walker.memory_accesses

let test_walker_invalidate_page_shared_prefix () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:0 ~frame:0 ();
  Page_table.map pt ~vpage:512 ~frame:1 ();
  let w = Walker.create pt in
  ignore (Walker.translate w 0);
  ignore (Walker.translate w 512);
  (* Pages 0 and 512 share levels 1-2 but split at the last interior
     level; invalidating page 0 takes the shared prefixes with it
     (INVLPG semantics are conservative) but page 512 keeps its own
     deepest entry, so it still walks with one access. *)
  Walker.invalidate_page w 0;
  let r = Walker.translate w 512 in
  check Alcotest.int "sibling keeps its deepest prefix" 1
    r.Walker.memory_accesses

(* Per-entry invalidation against a flush-and-rebuild reference: a
   model PWC as a set of (skip, prefix) keys, with capacity high
   enough that the real PWC never evicts, must predict every walk's
   memory-access count across random walk/invalidate/flush sequences. *)
let prop_walker_invalidate_matches_model =
  QCheck.Test.make ~count:80
    ~name:"Walker.invalidate_page matches flush-and-rebuild model"
    QCheck.(list (pair (int_bound 9) (int_bound 4095)))
    (fun ops ->
      let pt = Page_table.create () in
      for v = 0 to 4095 do
        Page_table.map pt ~vpage:v ~frame:v ()
      done;
      let w =
        Walker.create
          ~config:{ Walker.default_config with pwc_entries = 65536 }
          pt
      in
      let model = Hashtbl.create 256 in
      let key ~skip v = (skip, v lsr ((Page_table.levels - skip) * 9)) in
      List.iter
        (fun (op, v) ->
          match op with
          | 0 | 1 | 2 | 3 | 4 | 5 ->
            (* Walk: the model predicts accesses from its deepest
               matching prefix, then learns the path. *)
            let _, visits = Page_table.walk pt v in
            let max_skip = min (Page_table.levels - 1) (visits - 1) in
            let skip = ref 0 in
            for g = max_skip downto 1 do
              if !skip = 0 && Hashtbl.mem model (key ~skip:g v) then skip := g
            done;
            let predicted = max 1 (visits - !skip) in
            let r = Walker.translate w v in
            if r.Walker.memory_accesses <> predicted then
              QCheck.Test.fail_reportf
                "walk %d: predicted %d accesses, walker did %d" v predicted
                r.Walker.memory_accesses;
            for g = 1 to max_skip do
              Hashtbl.replace model (key ~skip:g v) ()
            done
          | 6 | 7 | 8 ->
            Walker.invalidate_page w v;
            for g = 1 to Page_table.levels - 1 do
              Hashtbl.remove model (key ~skip:g v)
            done
          | _ ->
            Walker.invalidate w;
            Hashtbl.reset model)
        ops;
      true)

(* --- Walker: cache-resident translation tier -------------------------- *)

let tiered_config ?(mode = Walker.Inclusive) ?(entries = 16) () =
  { Walker.default_config with
    tcache_entries = entries;
    tcache_latency = 30;
    tcache_mode = mode }

let test_walker_tcache_inclusive_hit () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:0 ~frame:0 ();
  let w = Walker.create ~config:(tiered_config ()) pt in
  let cold = Walker.translate w 0 in
  (* The probe is charged even on the cold miss. *)
  check Alcotest.int "cold walk still 4 accesses" 4 cold.Walker.memory_accesses;
  check Alcotest.bool "miss pays the probe" true
    (cold.Walker.cycles > 4 * 100);
  let hit = Walker.translate w 0 in
  check Alcotest.int "tier hit: no page-table access" 0
    hit.Walker.memory_accesses;
  check Alcotest.int "tier hit costs its latency" 30 hit.Walker.cycles;
  let s = Walker.stats w in
  check Alcotest.int "one tcache hit" 1 s.Walker.tcache_hits;
  check Alcotest.bool "hit strictly cheaper than any walk" true
    (hit.Walker.cycles < 100)

let test_walker_tcache_exclusive_deposit () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:0 ~frame:0 ();
  let w = Walker.create ~config:(tiered_config ~mode:Walker.Exclusive ()) pt in
  ignore (Walker.translate w 0);
  (* Exclusive: walks do not fill the tier. *)
  let again = Walker.translate w 0 in
  check Alcotest.bool "no hit before deposit" true
    (again.Walker.memory_accesses > 0);
  Walker.deposit w 0;
  let hit = Walker.translate w 0 in
  check Alcotest.int "deposited entry hits" 0 hit.Walker.memory_accesses;
  (* A victim store surrenders the entry on hit. *)
  let after = Walker.translate w 0 in
  check Alcotest.bool "entry migrated out" true
    (after.Walker.memory_accesses > 0);
  check Alcotest.int "exactly one tier hit" 1 (Walker.stats w).Walker.tcache_hits

let test_walker_tcache_never_serves_unmapped () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:7 ~frame:3 ();
  let w = Walker.create ~config:(tiered_config ()) pt in
  ignore (Walker.translate w 7);
  ignore (Page_table.unmap pt ~vpage:7);
  (* The stale tier entry must not shortcut the fault. *)
  let r = Walker.translate w 7 in
  check Alcotest.bool "fault reported" true (r.Walker.mapping = None);
  check Alcotest.int "no phantom tcache hit" 0
    (Walker.stats w).Walker.tcache_hits

let test_walker_tcache_invalidate_page () =
  let pt = Page_table.create () in
  Page_table.map pt ~vpage:0 ~frame:0 ();
  let w = Walker.create ~config:(tiered_config ()) pt in
  ignore (Walker.translate w 0);
  Walker.invalidate_page w 0;
  let r = Walker.translate w 0 in
  check Alcotest.int "tier entry dropped with the page" 4
    r.Walker.memory_accesses

(* Tier disabled = the pre-tier walker, byte for byte: same per-walk
   results and an obs snapshot with no tcache names in it. *)
let test_walker_tcache_disabled_identical () =
  let mk config =
    let reg = Atp_obs.Registry.create () in
    let pt = Page_table.create () in
    for v = 0 to 255 do
      Page_table.map pt ~vpage:v ~frame:v ()
    done;
    let w = Walker.create ~config ~obs:(Atp_obs.Scope.v reg) pt in
    let results = ref [] in
    for i = 0 to 999 do
      let v = i * 37 mod 256 in
      let r = Walker.translate w v in
      results := (r.Walker.memory_accesses, r.Walker.cycles) :: !results;
      if i mod 97 = 0 then Walker.invalidate_page w v
    done;
    (!results, Walker.stats w, Atp_obs.Registry.snapshot reg)
  in
  let r_disabled, s_disabled, snap_disabled =
    mk { Walker.default_config with tcache_entries = 0 }
  in
  let r_default, s_default, snap_default = mk Walker.default_config in
  check Alcotest.bool "per-walk results identical" true
    (r_disabled = r_default);
  check Alcotest.bool "stats identical" true (s_disabled = s_default);
  check Alcotest.bool "obs snapshots identical" true
    (snap_disabled = snap_default)

let test_walker_tcache_obs_names () =
  let snapshot config =
    let reg = Atp_obs.Registry.create () in
    let pt = Page_table.create () in
    Page_table.map pt ~vpage:0 ~frame:0 ();
    let w = Walker.create ~config ~obs:(Atp_obs.Scope.v reg) pt in
    ignore (Walker.translate w 0);
    Atp_obs.Json.to_string (Atp_obs.Registry.snapshot reg)
  in
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  let off = snapshot { Walker.default_config with tcache_entries = 0 } in
  let on = snapshot (tiered_config ()) in
  check Alcotest.bool "disabled tier registers nothing" false
    (contains off "tcache");
  check Alcotest.bool "enabled tier is observable" true (contains on "tcache")

(* --- Nested ------------------------------------------------------------ *)

let test_nested_translates () =
  let n = Nested.create () in
  Nested.guest_map n ~gva:100 ~gpa:7;
  Nested.host_map n ~gpa:7 ~hpa:99;
  let r = Nested.translate n 100 in
  check Alcotest.(option int) "end-to-end frame" (Some 99) r.Nested.hframe

let test_nested_cost_exceeds_bare_metal () =
  (* The headline effect: nested cold walks cost several times a bare
     walk (up to 24 accesses vs 4 on x86). *)
  let n = Nested.create () in
  Nested.guest_map n ~gva:0 ~gpa:0;
  let r = Nested.translate n 0 in
  check Alcotest.bool
    (Printf.sprintf "cold nested walk is expensive (%d accesses)"
       r.Nested.memory_accesses)
    true
    (r.Nested.memory_accesses > Page_table.levels * 2);
  check Alcotest.bool "bounded by the 2D worst case" true
    (r.Nested.memory_accesses
     <= ((Page_table.levels + 1) * (Page_table.levels + 1)) - 1)

let test_nested_warm_walks_cheapen () =
  let n = Nested.create () in
  Nested.guest_map n ~gva:0 ~gpa:0;
  let cold = Nested.translate n 0 in
  let warm = Nested.translate n 0 in
  check Alcotest.bool "host TLB + PWC help" true
    (warm.Nested.memory_accesses < cold.Nested.memory_accesses)

let test_nested_unmapped_guest () =
  let n = Nested.create () in
  let r = Nested.translate n 4242 in
  check Alcotest.bool "absent guest mapping" true (r.Nested.hframe = None)

let test_nested_epsilon_vs_bare () =
  (* Random accesses over a large space: the effective epsilon under
     virtualization must exceed the bare-metal one. *)
  let rng = Atp_util.Prng.create ~seed:1 () in
  let pages = Array.init 2_000 (fun _ -> Atp_util.Prng.int rng 100_000) in
  let pt = Page_table.create () in
  let bare = Walker.create pt in
  let nested = Nested.create () in
  Array.iter
    (fun v ->
      if Page_table.lookup pt v = None then Page_table.map pt ~vpage:v ~frame:v ();
      ignore (Walker.translate bare v);
      (try Nested.guest_map nested ~gva:v ~gpa:v with Invalid_argument _ -> ());
      ignore (Nested.translate nested v))
    pages;
  let io = 40_000 in
  let e_bare = Walker.epsilon bare ~io_latency_cycles:io in
  let e_nested = Nested.epsilon nested ~io_latency_cycles:io in
  check Alcotest.bool
    (Printf.sprintf "nested eps (%.4f) > bare eps (%.4f)" e_nested e_bare)
    true (e_nested > e_bare)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "atp.mmu"
    [
      ( "page_table",
        Alcotest.test_case "map/lookup" `Quick test_pt_map_lookup
        :: Alcotest.test_case "unmap" `Quick test_pt_unmap
        :: Alcotest.test_case "duplicate" `Quick test_pt_duplicate_rejected
        :: Alcotest.test_case "huge leaf" `Quick test_pt_huge_leaf
        :: Alcotest.test_case "alignment" `Quick test_pt_huge_alignment
        :: Alcotest.test_case "overlap" `Quick test_pt_overlap_rejected
        :: Alcotest.test_case "accessed/dirty" `Quick test_pt_accessed_dirty
        :: Alcotest.test_case "clear_accessed keeps dirty" `Quick
             test_pt_clear_accessed_preserves_dirty
        :: Alcotest.test_case "iter order" `Quick test_pt_iter_order
        :: qsuite [ prop_pt_matches_model ] );
      ( "walker",
        [
          Alcotest.test_case "cost structure" `Quick test_walker_cost_structure;
          Alcotest.test_case "huge leaf cheaper" `Quick test_walker_huge_leaf_cheaper;
          Alcotest.test_case "pwc locality" `Quick test_walker_locality_via_pwc;
          Alcotest.test_case "invalidate" `Quick test_walker_invalidate;
          Alcotest.test_case "epsilon" `Quick test_walker_epsilon;
          Alcotest.test_case "unmapped" `Quick test_walker_unmapped;
          Alcotest.test_case "invlpg precision" `Quick
            test_walker_invalidate_page_precision;
          Alcotest.test_case "invlpg shared prefix" `Quick
            test_walker_invalidate_page_shared_prefix;
          Alcotest.test_case "tcache inclusive hit" `Quick
            test_walker_tcache_inclusive_hit;
          Alcotest.test_case "tcache exclusive deposit" `Quick
            test_walker_tcache_exclusive_deposit;
          Alcotest.test_case "tcache never serves unmapped" `Quick
            test_walker_tcache_never_serves_unmapped;
          Alcotest.test_case "tcache invalidate page" `Quick
            test_walker_tcache_invalidate_page;
          Alcotest.test_case "tier disabled = pre-tier walker" `Quick
            test_walker_tcache_disabled_identical;
          Alcotest.test_case "tcache obs naming" `Quick
            test_walker_tcache_obs_names;
        ]
        @ qsuite [ prop_walker_invalidate_matches_model ] );
      ( "nested",
        [
          Alcotest.test_case "translates" `Quick test_nested_translates;
          Alcotest.test_case "cold cost" `Quick test_nested_cost_exceeds_bare_metal;
          Alcotest.test_case "warm cheapens" `Quick test_nested_warm_walks_cheapen;
          Alcotest.test_case "unmapped guest" `Quick test_nested_unmapped_guest;
          Alcotest.test_case "epsilon vs bare" `Quick test_nested_epsilon_vs_bare;
        ] );
    ]
