open Atp_core
open Atp_paging
open Atp_util

let check = Alcotest.check

(* --- Params ---------------------------------------------------------- *)

let test_params_iceberg_defaults () =
  let p = Params.derive ~p:(1 lsl 20) ~w:64 () in
  check Alcotest.bool "k = 3 for iceberg[2]" true (p.Params.k = 3);
  check Alcotest.bool "tau below bucket size" true
    (p.Params.tau < p.Params.bucket_size);
  check Alcotest.bool "h_max positive" true (p.Params.h_max >= 1);
  check Alcotest.bool "delta small" true
    (p.Params.delta > 0.0 && p.Params.delta <= 0.5);
  check Alcotest.bool "encoding fits in w" true
    (p.Params.h_max * p.Params.bits_per_page <= 64);
  check Alcotest.bool "slots don't exceed P" true
    (p.Params.buckets * p.Params.bucket_size <= 1 lsl 20)

let test_params_one_choice () =
  let p = Params.derive ~scheme:Params.One_choice ~p:(1 lsl 20) ~w:64 () in
  check Alcotest.int "k = 1" 1 p.Params.k;
  check Alcotest.int "tau = B" p.Params.bucket_size p.Params.tau;
  let ice = Params.derive ~p:(1 lsl 20) ~w:64 () in
  (* The point of Iceberg: smaller buckets, hence more pages per TLB
     value. *)
  check Alcotest.bool "iceberg buckets smaller" true
    (ice.Params.bucket_size < p.Params.bucket_size);
  check Alcotest.bool "iceberg h_max at least as large" true
    (ice.Params.h_max >= p.Params.h_max)

let test_params_h_max_grows_with_w () =
  let at w = (Params.derive ~p:(1 lsl 18) ~w ()).Params.h_max in
  check Alcotest.bool "monotone in w" true (at 128 >= at 64 && at 64 >= at 16)

let test_params_rejects_tiny () =
  Alcotest.check_raises "w too small"
    (Invalid_argument "Params.derive: w too small to encode a single page pointer")
    (fun () -> ignore (Params.derive ~p:(1 lsl 20) ~w:2 ()))

let test_params_delta_exponent () =
  (* Footnote 5: higher exponents buy smaller delta (more usable RAM)
     at the price of bigger buckets — and must stay failure-free when
     filled to their own, larger budget. *)
  let p1 = Params.derive ~p:(1 lsl 16) ~w:64 () in
  let p2 = Params.derive ~delta_exponent:2 ~p:(1 lsl 16) ~w:64 () in
  check Alcotest.bool "smaller delta" true (p2.Params.delta < p1.Params.delta);
  check Alcotest.bool "more usable pages" true
    (Params.usable_pages p2 > Params.usable_pages p1);
  check Alcotest.bool "bigger buckets" true
    (p2.Params.bucket_size > p1.Params.bucket_size);
  let a = Alloc.create p2 in
  for page = 0 to Params.usable_pages p2 - 1 do
    ignore (Alloc.insert a page)
  done;
  check Alcotest.int "still failure-free at the larger budget" 0
    (Alloc.failures_total a);
  Alcotest.check_raises "exponent >= 1"
    (Invalid_argument "Params.derive: delta_exponent must be at least 1")
    (fun () -> ignore (Params.derive ~delta_exponent:0 ~p:1024 ~w:64 ()))

let test_params_usable_pages () =
  let p = Params.derive ~p:10_000 ~w:64 () in
  let usable = Params.usable_pages p in
  check Alcotest.bool "within (0, P)" true (usable > 0 && usable < 10_000);
  check Alcotest.int "matches delta" usable
    (int_of_float (float_of_int 10_000 *. (1.0 -. p.Params.delta)))

(* --- Alloc ----------------------------------------------------------- *)

let small_params () = Params.derive ~p:4096 ~w:64 ()

let test_alloc_insert_delete () =
  let a = Alloc.create (small_params ()) in
  (match Alloc.insert a 42 with
   | Alloc.Placed { frame; _ } ->
     check Alcotest.(option int) "frame_of" (Some frame) (Alloc.frame_of a 42)
   | Alloc.Fallback _ -> Alcotest.fail "first insert must not fail");
  check Alcotest.int "live" 1 (Alloc.live a);
  Alloc.delete a 42;
  check Alcotest.int "live after delete" 0 (Alloc.live a);
  check Alcotest.(option int) "gone" None (Alloc.frame_of a 42)

let test_alloc_rejects_duplicates () =
  let a = Alloc.create (small_params ()) in
  ignore (Alloc.insert a 1);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Alloc.insert: page already resident") (fun () ->
      ignore (Alloc.insert a 1))

let test_alloc_phi_injective_and_stable () =
  let params = small_params () in
  let a = Alloc.create params in
  let budget = Params.usable_pages params in
  let frames = Hashtbl.create 64 in
  (* Fill to the policy budget; every frame must be distinct. *)
  for page = 0 to budget - 1 do
    ignore (Alloc.insert a page);
    let frame = Option.get (Alloc.frame_of a page) in
    check Alcotest.bool "injective" false (Hashtbl.mem frames frame);
    Hashtbl.replace frames frame page
  done;
  (* Stability: the frame of a resident page never changes, even under
     churn around it. *)
  let probe = 17 in
  let before = Alloc.frame_of a probe in
  for page = 0 to 99 do
    if page <> probe then begin
      Alloc.delete a page;
      ignore (Alloc.insert a (budget + page))
    end
  done;
  check Alcotest.(option int) "stable" before (Alloc.frame_of a probe)

let test_alloc_failure_at_saturation () =
  (* One-choice with a tiny space: overfilling one bucket must produce
     fallback placements, never crashes or lost pages. *)
  let params = Params.derive ~scheme:Params.One_choice ~p:256 ~w:64 () in
  let a = Alloc.create params in
  let total = Alloc.frames a in
  for page = 0 to total - 1 do
    ignore (Alloc.insert a page)
  done;
  check Alcotest.int "every frame used" 0 (Alloc.free a);
  check Alcotest.bool "fallbacks happened at full load" true
    (Alloc.failures_total a > 0);
  (* All resident pages still resolve to distinct frames. *)
  let seen = Hashtbl.create 64 in
  for page = 0 to total - 1 do
    let frame = Option.get (Alloc.frame_of a page) in
    check Alcotest.bool "distinct" false (Hashtbl.mem seen frame);
    Hashtbl.replace seen frame page
  done;
  Alcotest.check_raises "full" (Failure "Alloc: RAM completely full") (fun () ->
      ignore (Alloc.insert a 99_999))

let test_alloc_iceberg_no_failures_at_budget () =
  (* The Theorem 3 claim at simulation scale: within the (1-δ)P budget,
     Iceberg placements should not fail. *)
  let params = Params.derive ~p:(1 lsl 14) ~w:64 () in
  let a = Alloc.create params in
  let budget = Params.usable_pages params in
  for page = 0 to budget - 1 do
    ignore (Alloc.insert a page)
  done;
  check Alcotest.int "no failures" 0 (Alloc.failures_total a);
  check Alcotest.bool "max bucket load within B" true
    (Alloc.max_bucket_load a <= params.Params.bucket_size)

let prop_alloc_churn_consistency =
  QCheck.Test.make ~name:"alloc stays consistent under churn" ~count:30
    QCheck.(list (int_bound 600))
    (fun pages ->
      let params = Params.derive ~p:1024 ~w:64 () in
      let a = Alloc.create params in
      let budget = Params.usable_pages params in
      List.iter
        (fun page ->
          if Alloc.mem a page then Alloc.delete a page
          else if Alloc.live a < budget then ignore (Alloc.insert a page))
        pages;
      (* Frames of live pages are distinct and in range. *)
      let frames = Hashtbl.create 64 in
      let ok = ref true in
      for page = 0 to 600 do
        match Alloc.frame_of a page with
        | None -> ()
        | Some frame ->
          if frame < 0 || frame >= Alloc.frames a then ok := false;
          if Hashtbl.mem frames frame then ok := false;
          Hashtbl.replace frames frame page
      done;
      !ok && Hashtbl.length frames = Alloc.live a)

(* --- Encoding: the Eq. (4) guarantee --------------------------------- *)

let test_encoding_roundtrip_small () =
  let params = small_params () in
  let a = Alloc.create params in
  let e = Encoding.create a in
  let h_max = Encoding.h_max e in
  let value = Encoding.empty_value e in
  (* Insert the pages of huge page 3 and encode them one by one. *)
  let base = 3 * h_max in
  for i = 0 to h_max - 1 do
    ignore (Alloc.insert a (base + i));
    Encoding.refresh_page e value (base + i)
  done;
  for i = 0 to h_max - 1 do
    let v = base + i in
    check Alcotest.int "decode = phi" (Option.get (Alloc.frame_of a v))
      (Encoding.decode e v value)
  done;
  (* Remove one: its field must decode to -1, the rest unchanged. *)
  Alloc.delete a base;
  Encoding.clear_page e value base;
  check Alcotest.int "absent decodes to -1" (-1) (Encoding.decode e base value);
  for i = 1 to h_max - 1 do
    let v = base + i in
    check Alcotest.int "others unchanged" (Option.get (Alloc.frame_of a v))
      (Encoding.decode e v value)
  done

let test_encoding_fits_w () =
  let params = Params.derive ~p:(1 lsl 16) ~w:48 () in
  let a = Alloc.create params in
  let e = Encoding.create a in
  check Alcotest.bool "bits within w" true (Encoding.bits_used e <= 48)

let test_encoding_empty_value_all_null () =
  let params = small_params () in
  let e = Encoding.create (Alloc.create params) in
  let value = Encoding.empty_value e in
  check Alcotest.bool "is_empty" true (Encoding.is_empty e value);
  for i = 0 to Encoding.h_max e - 1 do
    check Alcotest.int "decodes null" (-1) (Encoding.decode e i value)
  done

let prop_encoding_eq4 =
  (* Equation (4): for random residency patterns within one huge page,
     f(v, psi(u)) = phi(v) for active v and -1 otherwise. *)
  QCheck.Test.make ~name:"Eq. (4): decode matches phi exactly" ~count:50
    QCheck.(pair (int_bound 100) (list (pair (int_bound 30) bool)))
    (fun (u, flips) ->
      let params = Params.derive ~p:2048 ~w:64 () in
      let a = Alloc.create params in
      let e = Encoding.create a in
      let h_max = Encoding.h_max e in
      let value = Encoding.empty_value e in
      let base = u * h_max in
      List.iter
        (fun (i, insert) ->
          let v = base + (i mod h_max) in
          if insert && not (Alloc.mem a v) then begin
            ignore (Alloc.insert a v);
            Encoding.refresh_page e value v
          end
          else if (not insert) && Alloc.mem a v then begin
            Alloc.delete a v;
            Encoding.clear_page e value v
          end)
        flips;
      let ok = ref true in
      for i = 0 to h_max - 1 do
        let v = base + i in
        let decoded = Encoding.decode e v value in
        (match Alloc.location_of a v with
         | Some (Alloc.Placed { frame; _ }) -> if decoded <> frame then ok := false
         | Some (Alloc.Fallback _) -> if decoded <> -1 then ok := false
         | None -> if decoded <> -1 then ok := false)
      done;
      !ok)

(* --- Decoupled -------------------------------------------------------- *)

let test_decoupled_translation_flow () =
  let params = Params.derive ~p:4096 ~w:64 () in
  let d = Decoupled.create params in
  let h_max = Decoupled.h_max d in
  let v = (5 * h_max) + 1 in
  let u = v / h_max in
  check Alcotest.bool "not covered yet" true (Decoupled.translate d v = Decoupled.Not_covered);
  Decoupled.tlb_add d u;
  check Alcotest.bool "covered but absent -> fault" true
    (Decoupled.translate d v = Decoupled.Decode_fault);
  Decoupled.ram_insert d v;
  (match Alloc.location_of (Decoupled.alloc d) v with
   | Some (Alloc.Placed { frame; _ }) ->
     check Alcotest.bool "frame translation" true
       (Decoupled.translate d v = Decoupled.Frame frame)
   | Some (Alloc.Fallback _) | None -> Alcotest.fail "unexpected failure");
  Decoupled.ram_evict d v;
  check Alcotest.bool "fault after eviction" true
    (Decoupled.translate d v = Decoupled.Decode_fault);
  Decoupled.tlb_remove d u;
  check Alcotest.bool "uncovered after removal" true
    (Decoupled.translate d v = Decoupled.Not_covered)

let test_decoupled_psi_updates_in_tlb () =
  (* A page becoming resident while its huge page is already in the
     TLB must be visible without re-inserting the TLB entry. *)
  let params = Params.derive ~p:4096 ~w:64 () in
  let d = Decoupled.create params in
  let h_max = Decoupled.h_max d in
  let v1 = 7 * h_max and v2 = (7 * h_max) + 1 in
  ignore (Decoupled.ram_insert d v1);
  Decoupled.tlb_add d (v1 / h_max);
  (match Decoupled.translate d v1 with
   | Decoupled.Frame _ -> ()
   | _ -> Alcotest.fail "v1 should translate");
  ignore (Decoupled.ram_insert d v2);
  (match Decoupled.translate d v2 with
   | Decoupled.Frame _ -> ()
   | _ -> Alcotest.fail "psi update must reach the loaded TLB entry")

let test_decoupled_tlb_size () =
  let params = Params.derive ~p:4096 ~w:64 () in
  let d = Decoupled.create params in
  Decoupled.tlb_add d 1;
  Decoupled.tlb_add d 2;
  Decoupled.tlb_add d 1;
  check Alcotest.int "idempotent add" 2 (Decoupled.tlb_size d);
  Decoupled.tlb_remove d 1;
  Decoupled.tlb_remove d 1;
  check Alcotest.int "idempotent remove" 1 (Decoupled.tlb_size d)

let prop_decoupled_matches_alloc =
  QCheck.Test.make ~name:"decoupled translation = allocator truth" ~count:30
    QCheck.(list (int_bound 400))
    (fun pages ->
      let params = Params.derive ~p:2048 ~w:64 () in
      let d = Decoupled.create params in
      let a = Decoupled.alloc d in
      let h_max = Decoupled.h_max d in
      let budget = Params.usable_pages params in
      List.iter
        (fun v ->
          Decoupled.tlb_add d (v / h_max);
          if Alloc.mem a v then Decoupled.ram_evict d v
          else if Decoupled.active d < budget then ignore (Decoupled.ram_insert d v))
        pages;
      List.for_all
        (fun v ->
          match (Decoupled.translate d v, Alloc.location_of a v) with
          | Decoupled.Frame f, Some (Alloc.Placed { frame; _ }) -> f = frame
          | Decoupled.Decode_fault, Some (Alloc.Fallback _) -> true
          | Decoupled.Decode_fault, None -> true
          | Decoupled.Not_covered, _ -> not (Decoupled.tlb_mem d (v / h_max))
          | _ -> false)
        (List.sort_uniq compare pages))

(* --- Simulation (Theorem 4) ------------------------------------------ *)

let test_simulation_mirrors_x_and_y () =
  (* tlb_fills must equal X's misses on r(sigma) and ios must equal
     Y's misses on sigma, computed independently. *)
  let params = Params.derive ~p:4096 ~w:64 () in
  let h_max = params.Params.h_max in
  let budget = Params.usable_pages params in
  let rng = Prng.create ~seed:1 () in
  let trace = Array.init 5_000 (fun _ -> Prng.int rng 2_000) in
  let x = Policy.instantiate (module Lru) ~capacity:64 () in
  let y = Policy.instantiate (module Lru) ~capacity:budget () in
  let z = Simulation.create ~params ~x ~y () in
  Array.iter (Simulation.access z) trace;
  let r = Simulation.report z in
  let x_ref = Policy.instantiate (module Lru) ~capacity:64 () in
  let x_stats = Sim.run x_ref (Simulation.huge_trace ~h_max trace) in
  let y_ref = Policy.instantiate (module Lru) ~capacity:budget () in
  let y_stats = Sim.run y_ref trace in
  check Alcotest.int "tlb_fills = X misses" x_stats.Sim.misses r.Simulation.tlb_fills;
  check Alcotest.int "ios = Y misses" y_stats.Sim.misses r.Simulation.ios;
  check Alcotest.int "accesses" 5_000 r.Simulation.accesses

let test_simulation_cost_identity () =
  let r =
    {
      Simulation.accesses = 10;
      ios = 4;
      tlb_fills = 3;
      decoding_misses = 2;
      failures_total = 1;
      max_bucket_load = 5;
    }
  in
  let epsilon = 0.25 in
  check (Alcotest.float 1e-9) "C = C_IO + eps*(fills+decode)"
    (4.0 +. (0.25 *. 5.0))
    (Simulation.cost ~epsilon r);
  check (Alcotest.float 1e-9) "C_TLB" 0.75 (Simulation.c_tlb ~epsilon r);
  check (Alcotest.float 1e-9) "C_IO" 4.0 (Simulation.c_io r)

let test_simulation_rejects_oversized_y () =
  let params = Params.derive ~p:4096 ~w:64 () in
  let x = Policy.instantiate (module Lru) ~capacity:8 () in
  let y = Policy.instantiate (module Lru) ~capacity:4096 () in
  check Alcotest.bool "raises" true
    (try
       ignore (Simulation.create ~params ~x ~y ());
       false
     with Invalid_argument _ -> true)

let test_simulation_decoding_misses_rare () =
  (* Under the budget, iceberg placement should almost never fail, so
     decoding misses should be (near) zero: the n/poly(P) term. *)
  let params = Params.derive ~p:(1 lsl 14) ~w:64 () in
  let budget = Params.usable_pages params in
  let rng = Prng.create ~seed:2 () in
  let trace = Array.init 30_000 (fun _ -> Prng.int rng (1 lsl 15)) in
  let x = Policy.instantiate (module Lru) ~capacity:256 () in
  let y = Policy.instantiate (module Lru) ~capacity:budget () in
  let z = Simulation.create ~params ~x ~y () in
  Array.iter (Simulation.access z) trace;
  let r = Simulation.report z in
  check Alcotest.bool
    (Printf.sprintf "decoding misses tiny (%d of %d)" r.Simulation.decoding_misses
       r.Simulation.accesses)
    true
    (float_of_int r.Simulation.decoding_misses
     < 0.001 *. float_of_int r.Simulation.accesses)

let test_simulation_with_opt_y () =
  (* Theorem 4 allows offline Y; cross-check the IO count against a
     standalone OPT run. *)
  let params = Params.derive ~p:4096 ~w:64 () in
  let budget = min 64 (Params.usable_pages params) in
  let rng = Prng.create ~seed:3 () in
  let trace = Array.init 2_000 (fun _ -> Prng.int rng 256) in
  let x = Policy.instantiate (module Lru) ~capacity:32 () in
  let y = Atp_paging.Opt.instance ~capacity:budget trace in
  let z = Simulation.create ~params ~x ~y () in
  Array.iter (Simulation.access z) trace;
  let r = Simulation.report z in
  check Alcotest.int "ios = OPT misses"
    (Atp_paging.Opt.misses ~capacity:budget trace)
    r.Simulation.ios

let test_simulation_warmup_reset () =
  let params = Params.derive ~p:4096 ~w:64 () in
  let x = Policy.instantiate (module Lru) ~capacity:16 () in
  let y = Policy.instantiate (module Lru) ~capacity:512 () in
  let z = Simulation.create ~params ~x ~y () in
  let warmup = Array.init 100 (fun i -> i) in
  let measured = Array.init 50 (fun i -> i) in
  let r = Simulation.run ~warmup z measured in
  check Alcotest.int "only measured accesses" 50 r.Simulation.accesses;
  check Alcotest.int "no IOs for resident pages" 0 r.Simulation.ios

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "atp.core"
    [
      ( "params",
        [
          Alcotest.test_case "iceberg defaults" `Quick test_params_iceberg_defaults;
          Alcotest.test_case "one-choice" `Quick test_params_one_choice;
          Alcotest.test_case "h_max monotone in w" `Quick test_params_h_max_grows_with_w;
          Alcotest.test_case "rejects tiny w" `Quick test_params_rejects_tiny;
          Alcotest.test_case "delta exponent (footnote 5)" `Quick
            test_params_delta_exponent;
          Alcotest.test_case "usable pages" `Quick test_params_usable_pages;
        ] );
      ( "alloc",
        Alcotest.test_case "insert/delete" `Quick test_alloc_insert_delete
        :: Alcotest.test_case "duplicates" `Quick test_alloc_rejects_duplicates
        :: Alcotest.test_case "phi injective+stable" `Quick test_alloc_phi_injective_and_stable
        :: Alcotest.test_case "saturation" `Quick test_alloc_failure_at_saturation
        :: Alcotest.test_case "iceberg within budget" `Quick test_alloc_iceberg_no_failures_at_budget
        :: qsuite [ prop_alloc_churn_consistency ] );
      ( "encoding",
        Alcotest.test_case "roundtrip" `Quick test_encoding_roundtrip_small
        :: Alcotest.test_case "fits w" `Quick test_encoding_fits_w
        :: Alcotest.test_case "empty value" `Quick test_encoding_empty_value_all_null
        :: qsuite [ prop_encoding_eq4 ] );
      ( "decoupled",
        Alcotest.test_case "translation flow" `Quick test_decoupled_translation_flow
        :: Alcotest.test_case "psi updates reach TLB" `Quick test_decoupled_psi_updates_in_tlb
        :: Alcotest.test_case "tlb size" `Quick test_decoupled_tlb_size
        :: qsuite [ prop_decoupled_matches_alloc ] );
      ( "simulation",
        [
          Alcotest.test_case "mirrors X and Y" `Quick test_simulation_mirrors_x_and_y;
          Alcotest.test_case "cost identity" `Quick test_simulation_cost_identity;
          Alcotest.test_case "rejects oversized Y" `Quick test_simulation_rejects_oversized_y;
          Alcotest.test_case "decoding misses rare" `Quick test_simulation_decoding_misses_rare;
          Alcotest.test_case "OPT as Y" `Quick test_simulation_with_opt_y;
          Alcotest.test_case "warmup reset" `Quick test_simulation_warmup_reset;
        ] );
    ]
