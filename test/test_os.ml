(* Tests for the OS-level models: transparent huge pages (THP) and the
   multi-core TLB-shootdown machine (SMP). *)

open Atp_memsim
open Atp_workloads
open Atp_util

let check = Alcotest.check

let thp_config ~ram ~h =
  {
    Thp.default_config with
    ram_pages = ram;
    base_tlb_entries = 64;
    huge_tlb_entries = 8;
    huge_size = h;
  }

(* --- THP ------------------------------------------------------------- *)

let test_thp_base_faulting () =
  let t = Thp.create (thp_config ~ram:1024 ~h:16) in
  for v = 0 to 9 do Thp.access t v done;
  let c = Thp.counters t in
  check Alcotest.int "one IO per base fault" 10 c.Thp.ios;
  check Alcotest.int "faults" 10 c.Thp.faults;
  check Alcotest.int "no promotion below threshold" 0 c.Thp.promotions;
  check Alcotest.int "resident" 10 (Thp.resident_pages t)

let test_thp_promotes_dense_region () =
  let t = Thp.create (thp_config ~ram:1024 ~h:16) in
  (* Touch 15 of 16 pages: 15 >= ceil(0.9 * 16) = 15, so the region
     promotes, fetching the missing page. *)
  for v = 0 to 14 do Thp.access t v done;
  let c = Thp.counters t in
  check Alcotest.int "promoted" 1 c.Thp.promotions;
  check Alcotest.int "fill IO for the missing page" 1 c.Thp.promotion_fill_ios;
  check Alcotest.int "total IOs = 15 faults + 1 fill" 16 c.Thp.ios;
  check Alcotest.int "whole region resident" 16 (Thp.resident_pages t);
  check Alcotest.int "one huge region" 1 (Thp.promoted_regions t);
  (* Accesses across the region now hit the huge TLB entry. *)
  Thp.reset_counters t;
  for v = 0 to 15 do Thp.access t v done;
  let c = Thp.counters t in
  check Alcotest.int "no further IOs" 0 c.Thp.ios;
  check Alcotest.int "no TLB misses on promoted region" 0 c.Thp.tlb_misses

let test_thp_huge_eviction_is_indivisible () =
  (* RAM of exactly 2 huge regions; promote one, then flood with base
     pages from elsewhere: the promoted region eventually goes as one
     unit. *)
  let t = Thp.create (thp_config ~ram:32 ~h:16) in
  for v = 0 to 15 do Thp.access t v done;
  let c = Thp.counters t in
  check Alcotest.int "promoted" 1 c.Thp.promotions;
  (* 17+ distinct cold base pages force eviction pressure. *)
  for v = 1000 to 1031 do Thp.access t v done;
  let c = Thp.counters t in
  check Alcotest.bool "huge region evicted whole" true (c.Thp.huge_evictions >= 1);
  check Alcotest.bool "RAM never overcommitted" true
    (Thp.resident_pages t <= 32)

let test_thp_fragmentation_blocks_promotion () =
  (* Fill RAM with scattered base pages so no aligned block exists,
     with a zero compaction budget: promotion must fail gracefully and
     the pages stay resident as base pages. *)
  let cfg =
    { (thp_config ~ram:64 ~h:16) with Thp.max_compaction_evictions = 0 }
  in
  let t = Thp.create cfg in
  (* Occupy all frames with pages from many different regions (one per
     region, so nothing promotes). *)
  for r = 0 to 63 do Thp.access t (r * 16) done;
  check Alcotest.int "RAM full of singletons" 64 (Thp.resident_pages t);
  (* Now make one region dense: its promotion needs a contiguous block
     that a zero budget cannot create.  15 of its pages evict 15
     singletons (LRU), but frames are scattered. *)
  for v = 0 to 14 do Thp.access t v done;
  let c = Thp.counters t in
  check Alcotest.int "no promotion happened" 0 c.Thp.promotions;
  check Alcotest.bool "region pages still resident as base pages" true
    (Thp.resident_pages t <= 64)

let test_thp_vs_decoupled_shape () =
  (* The qualitative claim: on a bimodal workload THP pays promotion
     fills and huge-eviction refaults that the decoupled scheme never
     pays. *)
  let rng = Prng.create ~seed:5 () in
  let w =
    Bimodal.create ~hot_fraction:0.995 ~hot_pages:512 ~virtual_pages:(1 lsl 16)
      rng
  in
  let warmup = Workload.generate w 40_000 in
  let trace = Workload.generate w 40_000 in
  let t = Thp.create (thp_config ~ram:2048 ~h:64) in
  let c = Thp.run ~warmup t trace in
  check Alcotest.bool "THP promoted something during the run" true
    (c.Thp.promotions + (Thp.promoted_regions t) > 0);
  check Alcotest.bool "THP paid IOs" true (c.Thp.ios > 0)

(* --- SMP -------------------------------------------------------------- *)

let smp_config ~cores ~ram ~tlb =
  { Smp.default_config with cores; ram_pages = ram; tlb_entries_per_core = tlb }

let test_smp_basic_counts () =
  let t = Smp.create (smp_config ~cores:2 ~ram:64 ~tlb:16) in
  Smp.access t ~core:0 5;
  Smp.access t ~core:0 5;
  Smp.access t ~core:1 5;
  let c = Smp.counters t in
  check Alcotest.int "accesses" 3 c.Smp.accesses;
  (* Core 0 misses once; core 1 has its own TLB and misses too. *)
  check Alcotest.int "per-core TLB misses" 2 c.Smp.tlb_misses;
  check Alcotest.int "but only one IO (shared RAM)" 1 c.Smp.ios

let test_smp_shootdown_on_eviction () =
  (* RAM of 2 pages, both cores touch page 0; filling two more pages
     evicts 0 and must invalidate it on both cores. *)
  let t = Smp.create (smp_config ~cores:2 ~ram:2 ~tlb:16) in
  Smp.access t ~core:0 0;
  Smp.access t ~core:1 0;
  Smp.access t ~core:0 1;
  Smp.access t ~core:0 2;
  (* evicts page 0 *)
  let c = Smp.counters t in
  check Alcotest.bool "a shootdown happened" true (c.Smp.shootdown_events >= 1);
  (* Core 0 initiated the eviction, so only core 1's invalidation is a
     remote IPI. *)
  check Alcotest.bool "the remote core received an IPI" true (c.Smp.ipis >= 1);
  (* Page 0 must re-fault on both cores. *)
  Smp.reset_counters t;
  Smp.access t ~core:0 0;
  Smp.access t ~core:1 0;
  let c = Smp.counters t in
  check Alcotest.int "both cores miss again" 2 c.Smp.tlb_misses

let test_smp_bad_core_rejected () =
  let t = Smp.create (smp_config ~cores:2 ~ram:16 ~tlb:4) in
  Alcotest.check_raises "core out of range" (Invalid_argument "Smp.access: bad core")
    (fun () -> Smp.access t ~core:2 0)

let test_smp_partitioned_less_shootdown () =
  (* Shared round-robin traffic invalidates across cores; partitioned
     traffic keeps each page on one core, so shootdown IPIs drop. *)
  (* TLBs must be large relative to RAM so that eviction victims are
     actually cached somewhere — otherwise no shootdowns arise. *)
  let rng = Prng.create ~seed:9 () in
  let trace = Array.init 60_000 (fun _ -> Prng.int rng 512) in
  let run f =
    let t = Smp.create (smp_config ~cores:4 ~ram:256 ~tlb:512) in
    f t trace
  in
  let shared = run (fun t tr -> Smp.run_shared t tr) in
  let partitioned = run (fun t tr -> Smp.run_partitioned t tr) in
  check Alcotest.bool
    (Printf.sprintf "partitioned ipis (%d) < shared ipis (%d)"
       partitioned.Smp.ipis shared.Smp.ipis)
    true
    (partitioned.Smp.ipis < shared.Smp.ipis);
  (* The RAM policy only sees TLB-missing accesses, so IO counts may
     differ between sharding modes; both runs still do real paging. *)
  check Alcotest.bool "both modes page" true
    (shared.Smp.ios > 0 && partitioned.Smp.ios > 0)

let test_smp_cost_model () =
  let cfg = smp_config ~cores:2 ~ram:16 ~tlb:4 in
  let c =
    { Smp.accesses = 10; tlb_misses = 4; tcache_hits = 0; ios = 2;
      shootdown_events = 1; ipis = 3 }
  in
  check (Alcotest.float 1e-9) "cost formula"
    (2.0 +. (0.01 *. 4.0) +. (0.01 *. 3.0))
    (Smp.cost cfg c);
  (* Reach-extended: recovered misses are re-billed at tcache_ε. *)
  let c = { c with tcache_hits = 3 } in
  check (Alcotest.float 1e-9) "reach cost formula"
    (2.0 +. (0.01 *. 1.0) +. (0.003 *. 3.0) +. (0.01 *. 3.0))
    (Smp.cost cfg c)

let test_smp_tcache_recovers_cross_core () =
  (* Core 0's TLB eviction deposits the translation into the shared
     store; core 1 (which never saw the page) recovers it cheaply. *)
  let cfg =
    { (smp_config ~cores:2 ~ram:64 ~tlb:2) with Smp.tcache_entries = 16 }
  in
  let t = Smp.create cfg in
  Smp.access t ~core:0 7;
  (* Overflow core 0's 2-entry TLB so page 7 falls into the store. *)
  Smp.access t ~core:0 8;
  Smp.access t ~core:0 9;
  Smp.reset_counters t;
  Smp.access t ~core:1 7;
  let c = Smp.counters t in
  check Alcotest.int "miss counted" 1 c.Smp.tlb_misses;
  check Alcotest.int "recovered from the shared store" 1 c.Smp.tcache_hits;
  check Alcotest.int "no IO needed" 0 c.Smp.ios

let test_smp_shootdown_invalidates_tcache () =
  (* The regression this tier must not reintroduce: a translation that
     only lives in the shared cache-resident store must still die on
     unmap, or a later access would be served a dead mapping. *)
  let cfg =
    { (smp_config ~cores:2 ~ram:2 ~tlb:2) with Smp.tcache_entries = 16 }
  in
  let t = Smp.create cfg in
  Smp.access t ~core:0 0;
  (* Push page 0 out of core 0's TLB into the shared store... *)
  Smp.access t ~core:0 1;
  Smp.access t ~core:0 2 (* evicts page 0 from RAM: shootdown *);
  let c = Smp.counters t in
  check Alcotest.bool "unmap of a store-only translation still counts"
    true (c.Smp.shootdown_events >= 1);
  Smp.reset_counters t;
  (* Page 0 was unmapped; recovering it from the store now would be a
     use-after-unmap.  It must take the full path (IO) again. *)
  Smp.access t ~core:1 0;
  let c = Smp.counters t in
  check Alcotest.int "no stale recovery" 0 c.Smp.tcache_hits;
  check Alcotest.bool "page is re-fetched" true (c.Smp.ios >= 1)

let test_smp_tcache_disabled_identical () =
  (* tcache_entries = 0 must leave every counter exactly as before. *)
  let trace = Array.init 4000 (fun i -> (i * 769) land 1023) in
  let base = Smp.create (smp_config ~cores:4 ~ram:128 ~tlb:8) in
  let tiered0 =
    Smp.create
      { (smp_config ~cores:4 ~ram:128 ~tlb:8) with Smp.tcache_entries = 0 }
  in
  let a = Smp.run_shared base trace in
  let b = Smp.run_shared tiered0 trace in
  check Alcotest.bool "counters identical with the tier disabled" true (a = b)

let () =
  Alcotest.run "atp.os"
    [
      ( "thp",
        [
          Alcotest.test_case "base faulting" `Quick test_thp_base_faulting;
          Alcotest.test_case "promotes dense region" `Quick test_thp_promotes_dense_region;
          Alcotest.test_case "huge eviction indivisible" `Quick
            test_thp_huge_eviction_is_indivisible;
          Alcotest.test_case "fragmentation blocks promotion" `Quick
            test_thp_fragmentation_blocks_promotion;
          Alcotest.test_case "bimodal shape" `Quick test_thp_vs_decoupled_shape;
        ] );
      ( "smp",
        [
          Alcotest.test_case "basic counts" `Quick test_smp_basic_counts;
          Alcotest.test_case "shootdown on eviction" `Quick test_smp_shootdown_on_eviction;
          Alcotest.test_case "bad core" `Quick test_smp_bad_core_rejected;
          Alcotest.test_case "partitioned fewer IPIs" `Quick
            test_smp_partitioned_less_shootdown;
          Alcotest.test_case "cost model" `Quick test_smp_cost_model;
          Alcotest.test_case "tcache cross-core recovery" `Quick
            test_smp_tcache_recovers_cross_core;
          Alcotest.test_case "shootdown invalidates tcache" `Quick
            test_smp_shootdown_invalidates_tcache;
          Alcotest.test_case "tcache disabled identical" `Quick
            test_smp_tcache_disabled_identical;
        ] );
    ]
