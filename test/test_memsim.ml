open Atp_memsim
open Atp_util

let check = Alcotest.check

(* --- Buddy allocator ------------------------------------------------ *)

let test_buddy_basic () =
  let b = Buddy.create ~frames:16 in
  check Alcotest.int "all free" 16 (Buddy.free_frames b);
  let a1 = Buddy.alloc b ~order:2 in
  check Alcotest.bool "got a block" true (a1 <> None);
  check Alcotest.int "used" 4 (Buddy.used_frames b);
  (match a1 with
   | Some base ->
     check Alcotest.int "aligned" 0 (base land 3);
     Buddy.free b ~base ~order:2
   | None -> ());
  check Alcotest.int "all free again" 16 (Buddy.free_frames b);
  check Alcotest.(option int) "coalesced back to one block" (Some 4)
    (Buddy.largest_free_order b)

let test_buddy_split_and_coalesce () =
  let b = Buddy.create ~frames:8 in
  let blocks = List.init 8 (fun _ -> Option.get (Buddy.alloc b ~order:0)) in
  check Alcotest.int "exhausted" 0 (Buddy.free_frames b);
  check Alcotest.(option int) "nothing left" None (Buddy.alloc b ~order:0);
  List.iter (fun base -> Buddy.free b ~base ~order:0) blocks;
  check Alcotest.(option int) "fully coalesced" (Some 3)
    (Buddy.largest_free_order b);
  Buddy.check_invariants b

let test_buddy_fragmentation () =
  (* Allocate all singles, free every other one: half the frames are
     free yet no order-1 block exists. *)
  let b = Buddy.create ~frames:8 in
  let blocks = Array.init 8 (fun _ -> Option.get (Buddy.alloc b ~order:0)) in
  Array.sort compare blocks;
  for i = 0 to 7 do
    if i mod 2 = 0 then Buddy.free b ~base:blocks.(i) ~order:0
  done;
  check Alcotest.int "half free" 4 (Buddy.free_frames b);
  check Alcotest.(option int) "but fragmented" None (Buddy.alloc b ~order:1);
  Buddy.check_invariants b

let test_buddy_double_free_rejected () =
  let b = Buddy.create ~frames:4 in
  let base = Option.get (Buddy.alloc b ~order:1) in
  Buddy.free b ~base ~order:1;
  Alcotest.check_raises "double free"
    (Invalid_argument "Buddy.free: block not allocated") (fun () ->
      Buddy.free b ~base ~order:1)

let test_buddy_order_mismatch_rejected () =
  let b = Buddy.create ~frames:4 in
  let base = Option.get (Buddy.alloc b ~order:1) in
  Alcotest.check_raises "order mismatch"
    (Invalid_argument "Buddy.free: order mismatch") (fun () ->
      Buddy.free b ~base ~order:0)

let test_buddy_non_power_of_two () =
  let b = Buddy.create ~frames:12 in
  check Alcotest.int "all frames tracked" 12 (Buddy.free_frames b);
  (* An order-3 block fits in [0,8). *)
  check Alcotest.bool "order 3 available" true (Buddy.alloc b ~order:3 <> None);
  (* The remaining 4 frames form an order-2 block. *)
  check Alcotest.bool "order 2 available" true (Buddy.alloc b ~order:2 <> None);
  check Alcotest.int "exhausted" 0 (Buddy.free_frames b);
  Buddy.check_invariants b

let prop_buddy_random_ops =
  QCheck.Test.make ~name:"buddy invariants under random alloc/free" ~count:60
    QCheck.(list (pair (int_bound 3) bool))
    (fun ops ->
      let b = Buddy.create ~frames:64 in
      let live = ref [] in
      List.iter
        (fun (order, do_alloc) ->
          if do_alloc then begin
            match Buddy.alloc b ~order with
            | Some base -> live := (base, order) :: !live
            | None -> ()
          end
          else begin
            match !live with
            | (base, order) :: rest ->
              Buddy.free b ~base ~order;
              live := rest
            | [] -> ()
          end)
        ops;
      Buddy.check_invariants b;
      true)

(* --- Machine -------------------------------------------------------- *)

let config ~ram ~tlb ~h =
  { Machine.default_config with ram_pages = ram; tlb_entries = tlb; huge_size = h }

let test_machine_rejects_bad_huge_size () =
  Alcotest.check_raises "not a power of two"
    (Invalid_argument "Machine.create: huge_size must be a power of two")
    (fun () -> ignore (Machine.create (config ~ram:64 ~tlb:4 ~h:3)))

let test_machine_counts_accesses () =
  let m = Machine.create (config ~ram:64 ~tlb:4 ~h:1) in
  for v = 0 to 9 do Machine.access m v done;
  let c = Machine.counters m in
  check Alcotest.int "accesses" 10 c.Machine.accesses;
  check Alcotest.int "all cold misses" 10 c.Machine.tlb_misses;
  check Alcotest.int "all faults" 10 c.Machine.page_faults;
  check Alcotest.int "one IO each" 10 c.Machine.ios

let test_machine_hits_are_free () =
  let m = Machine.create (config ~ram:64 ~tlb:4 ~h:1) in
  Machine.access m 5;
  Machine.access m 5;
  let c = Machine.counters m in
  check Alcotest.int "one miss" 1 c.Machine.tlb_misses;
  check Alcotest.int "one hit" 1 c.Machine.tlb_hits;
  check Alcotest.int "one IO" 1 c.Machine.ios

let test_machine_page_fault_amplification () =
  (* With h = 8, touching one page faults the whole huge page: 8 IOs. *)
  let m = Machine.create (config ~ram:64 ~tlb:4 ~h:8) in
  Machine.access m 0;
  let c = Machine.counters m in
  check Alcotest.int "8 IOs for one access" 8 c.Machine.ios;
  (* The 7 sibling pages are now resident and TLB-covered: free. *)
  for v = 1 to 7 do Machine.access m v done;
  let c = Machine.counters m in
  check Alcotest.int "no further IOs" 8 c.Machine.ios;
  check Alcotest.int "no further TLB misses" 1 c.Machine.tlb_misses

let test_machine_ram_pressure_evicts () =
  (* RAM of 4 pages, h = 1: touching 5 distinct pages must re-fault. *)
  let m = Machine.create (config ~ram:4 ~tlb:64 ~h:1) in
  for v = 0 to 4 do Machine.access m v done;
  Machine.access m 0;
  (* 0 was evicted by LRU when 4 came in. *)
  let c = Machine.counters m in
  check Alcotest.int "6 faults" 6 c.Machine.page_faults;
  check Alcotest.int "resident bounded" 4 (Machine.resident_pages m)

let test_machine_tlb_shootdown_on_eviction () =
  (* TLB large, RAM tiny: a page evicted from RAM must not hit in the
     TLB afterwards (the entry is shot down). *)
  let m = Machine.create (config ~ram:2 ~tlb:64 ~h:1) in
  Machine.access m 0;
  Machine.access m 1;
  Machine.access m 2;
  (* evicts 0 *)
  Machine.access m 0;
  let c = Machine.counters m in
  (* 4 misses: 0, 1, 2, 0 again. *)
  check Alcotest.int "four TLB misses" 4 c.Machine.tlb_misses;
  check Alcotest.int "four IOs" 4 c.Machine.ios

let test_machine_warmup_separation () =
  let m = Machine.create (config ~ram:64 ~tlb:16 ~h:1) in
  let warmup = Array.init 32 (fun i -> i) in
  let measured = Array.init 8 (fun i -> i) in
  let c = Machine.run ~warmup m measured in
  check Alcotest.int "counters cover only measurement" 8 c.Machine.accesses;
  (* Pages 0..7 got evicted from the 16-entry TLB during warmup of 32
     pages, so they miss again, but they are RAM-resident: no IOs. *)
  check Alcotest.int "no IOs after warmup" 0 c.Machine.ios

let test_machine_cost_model () =
  let c =
    { Machine.accesses = 100; tlb_hits = 90; tlb_misses = 10; tcache_hits = 0;
      page_faults = 2; ios = 4 }
  in
  check (Alcotest.float 1e-9) "cost" (4.0 +. 0.5) (Machine.cost ~epsilon:0.05 c);
  (* Reach-extended model: with no tcache hits it degenerates to the
     plain model; with hits, each one is re-billed at tcache_ε. *)
  check (Alcotest.float 1e-9) "reach cost, tier idle" (4.0 +. 0.5)
    (Machine.cost_with_reach ~epsilon:0.05 ~tcache_epsilon:0.01 c);
  let c = { c with tcache_hits = 6 } in
  check (Alcotest.float 1e-9) "reach cost"
    (4.0 +. (0.05 *. 4.0) +. (0.01 *. 6.0))
    (Machine.cost_with_reach ~epsilon:0.05 ~tcache_epsilon:0.01 c);
  Alcotest.check_raises "tcache_epsilon above epsilon rejected"
    (Invalid_argument
       "Machine.cost_with_reach: need 0 <= tcache_epsilon <= epsilon")
    (fun () ->
      ignore (Machine.cost_with_reach ~epsilon:0.05 ~tcache_epsilon:0.06 c))

let test_machine_tcache_recovers_tlb_victims () =
  (* A TLB eviction deposits the translation into the victim store; the
     next miss on that page recovers it without a fault. *)
  let m =
    Machine.create { (config ~ram:64 ~tlb:2 ~h:1) with tcache_entries = 16 }
  in
  Machine.access m 0;
  (* Overflow the 2-entry TLB so page 0 falls into the store. *)
  Machine.access m 1;
  Machine.access m 2;
  Machine.reset_counters m;
  Machine.access m 0;
  let c = Machine.counters m in
  check Alcotest.int "miss counted" 1 c.Machine.tlb_misses;
  check Alcotest.int "recovered from the store" 1 c.Machine.tcache_hits;
  check Alcotest.int "no fault" 0 c.Machine.page_faults

let test_machine_eviction_invalidates_tcache () =
  (* A page evicted from RAM must disappear from the victim store too,
     not just from the TLB — otherwise a later access would be served a
     dead mapping without re-faulting. *)
  let m =
    Machine.create { (config ~ram:2 ~tlb:2 ~h:1) with tcache_entries = 16 }
  in
  Machine.access m 0;
  (* Push page 0 out of the TLB into the store... *)
  Machine.access m 1;
  (* ...then out of RAM entirely. *)
  Machine.access m 2;
  Machine.reset_counters m;
  Machine.access m 0;
  let c = Machine.counters m in
  check Alcotest.int "no stale recovery" 0 c.Machine.tcache_hits;
  check Alcotest.int "page is re-faulted" 1 c.Machine.page_faults

let test_machine_tcache_disabled_identical () =
  (* tcache_entries = 0 must leave counters and the obs snapshot
     byte-identical to the pre-tier machine. *)
  let trace = Array.init 5000 (fun i -> (i * 353) land 2047) in
  let run cfg =
    let reg = Atp_obs.Registry.create () in
    let m = Machine.create ~obs:(Atp_obs.Scope.v ~prefix:"machine" reg) cfg in
    let c = Machine.run m trace in
    (c, Atp_obs.Registry.snapshot_string reg)
  in
  let base = config ~ram:256 ~tlb:8 ~h:1 in
  let a, snap_a = run base in
  let b, snap_b = run { base with tcache_entries = 0 } in
  check Alcotest.bool "counters identical" true (a = b);
  check Alcotest.string "obs snapshot identical" snap_a snap_b

let test_machine_huge_vs_small_tradeoff () =
  (* The qualitative Figure 1 effect on a small bimodal workload:
     larger huge pages => fewer TLB misses, more IOs. *)
  let rng = Prng.create ~seed:3 () in
  let hot = 256 in
  let virtual_pages = 1 lsl 14 in
  let trace =
    Array.init 20_000 (fun _ ->
        if Prng.float rng < 0.99 then Prng.int rng hot
        else Prng.int rng virtual_pages)
  in
  let run h =
    let m = Machine.create (config ~ram:2048 ~tlb:16 ~h) in
    Machine.run m trace
  in
  let small = run 1 and big = run 64 in
  check Alcotest.bool "huge pages reduce TLB misses" true
    (big.Machine.tlb_misses < small.Machine.tlb_misses);
  check Alcotest.bool "huge pages amplify IOs" true
    (big.Machine.ios > small.Machine.ios)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "atp.memsim"
    [
      ( "buddy",
        Alcotest.test_case "basic" `Quick test_buddy_basic
        :: Alcotest.test_case "split/coalesce" `Quick test_buddy_split_and_coalesce
        :: Alcotest.test_case "fragmentation" `Quick test_buddy_fragmentation
        :: Alcotest.test_case "double free" `Quick test_buddy_double_free_rejected
        :: Alcotest.test_case "order mismatch" `Quick test_buddy_order_mismatch_rejected
        :: Alcotest.test_case "non power of two" `Quick test_buddy_non_power_of_two
        :: qsuite [ prop_buddy_random_ops ] );
      ( "machine",
        [
          Alcotest.test_case "bad huge size" `Quick test_machine_rejects_bad_huge_size;
          Alcotest.test_case "counts" `Quick test_machine_counts_accesses;
          Alcotest.test_case "hits free" `Quick test_machine_hits_are_free;
          Alcotest.test_case "amplification" `Quick test_machine_page_fault_amplification;
          Alcotest.test_case "ram pressure" `Quick test_machine_ram_pressure_evicts;
          Alcotest.test_case "shootdown" `Quick test_machine_tlb_shootdown_on_eviction;
          Alcotest.test_case "warmup" `Quick test_machine_warmup_separation;
          Alcotest.test_case "cost model" `Quick test_machine_cost_model;
          Alcotest.test_case "tcache recovers victims" `Quick
            test_machine_tcache_recovers_tlb_victims;
          Alcotest.test_case "eviction invalidates tcache" `Quick
            test_machine_eviction_invalidates_tcache;
          Alcotest.test_case "tcache disabled identical" `Quick
            test_machine_tcache_disabled_identical;
          Alcotest.test_case "figure-1 shape" `Quick test_machine_huge_vs_small_tradeoff;
        ] );
    ]
