(* The experiment-runner subsystem (lib/exp) and the failure-semantics
   fixes that ride with it: per-task fault isolation, backtrace
   preservation through Parallel, bounded retry, checkpoint/resume
   with byte-identical streams, schema validation, the Json parser,
   empty-summary printing, and the figure-sweep shape line on
   degenerate sweeps. *)

open Atp_util
module Json = Atp_obs.Json
module Spec = Atp_exp.Spec
module Runner = Atp_exp.Runner
module Outcome = Atp_exp.Outcome
module Schema = Atp_exp.Schema
module Checkpoint = Atp_exp.Checkpoint
module Report = Atp_exp.Report

let check = Alcotest.check

let contains s sub =
  let n = String.length sub and len = String.length s in
  let rec go i =
    i + n <= len && (String.equal (String.sub s i n) sub || go (i + 1))
  in
  go 0

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* A deterministic, race-free clock: each call returns the next
   integer second.  Makes wall_s — and with it whole BENCH streams —
   reproducible. *)
let ticking_clock () =
  let c = Atomic.make 0 in
  fun () -> float_of_int (Atomic.fetch_and_add c 1 + 1)

(* A scratch directory name (the runner creates it on demand, which
   also exercises ensure_parent_dir). *)
let scratch_dir () =
  let f = Filename.temp_file "atp_exp" "" in
  Sys.remove f;
  f

(* --- Parallel failure semantics ------------------------------------ *)

(* A raise site a few frames deep, so the backtrace has something to
   lose. *)
let rec deep n : int = if n = 0 then failwith "deep-boom" else 1 + deep (n - 1)

let work x = if x = 0 then deep 3 else x * 2

let test_map_results_isolation () =
  let results = Parallel.map_results ~domains:2 work [ 1; 0; 3; 4 ] in
  match results with
  | [ Ok 2; Error (e, _); Ok 6; Ok 8 ] ->
    check Alcotest.bool "failure text" true
      (contains (Printexc.to_string e) "deep-boom")
  | _ -> Alcotest.fail "expected exactly one Error among Oks, in input order"

let test_map_results_all_ok () =
  check
    Alcotest.(list int)
    "all ok" [ 2; 4; 6 ]
    (List.filter_map
       (function Ok v -> Some v | Error _ -> None)
       (Parallel.map_results (fun x -> 2 * x) [ 1; 2; 3 ]))

(* Backtrace preservation is only observable when the build records
   backtraces with locations; calibrate with a direct raise and only
   then require the parallel path to preserve the same information. *)
let test_map_backtrace_preserved () =
  Printexc.record_backtrace true;
  let control =
    match work 0 with
    | _ -> ""
    | exception _ -> Printexc.get_backtrace ()
  in
  if contains control "test_exp" then begin
    (match Parallel.map ~domains:2 work [ 0; 1 ] with
    | _ -> Alcotest.fail "map should re-raise"
    | exception Failure _ ->
      check Alcotest.bool "map re-raise keeps the raise site" true
        (contains (Printexc.get_backtrace ()) "test_exp"));
    match Parallel.map_results ~domains:2 work [ 0 ] with
    | [ Error (_, bt) ] ->
      check Alcotest.bool "map_results carries the raise site" true
        (contains (Printexc.raw_backtrace_to_string bt) "test_exp")
    | _ -> Alcotest.fail "expected one Error"
  end

(* --- Stats.Summary empty case -------------------------------------- *)

let test_empty_summary () =
  let s = Stats.Summary.create () in
  let printed = Format.asprintf "%a" Stats.Summary.pp s in
  check Alcotest.string "empty summary prints n=0 alone" "n=0" printed;
  check Alcotest.bool "no inf leaks" false (contains printed "inf");
  (match Stats.Summary.min s with
  | _ -> Alcotest.fail "min on empty must raise"
  | exception Invalid_argument _ -> ());
  (match Stats.Summary.max s with
  | _ -> Alcotest.fail "max on empty must raise"
  | exception Invalid_argument _ -> ());
  Stats.Summary.add s 2.0;
  check (Alcotest.float 0.0) "min after add" 2.0 (Stats.Summary.min s);
  check Alcotest.bool "non-empty pp has min" true
    (contains (Format.asprintf "%a" Stats.Summary.pp s) "min=")

let test_empty_histogram_snapshot () =
  let reg = Atp_obs.Registry.create () in
  ignore (Atp_obs.Registry.histogram reg "empty.h");
  let snap = Atp_obs.Registry.snapshot_string reg in
  check Alcotest.bool "snapshot mentions the histogram" true
    (contains snap "empty.h");
  check Alcotest.bool "empty histogram snapshot has no inf" false
    (contains snap "inf")

(* --- Json parser ---------------------------------------------------- *)

let test_json_parse_roundtrip () =
  let roundtrip s =
    match Json.of_string s with
    | Ok v -> Json.to_string v
    | Error e -> Alcotest.failf "parse %s: %s" s e
  in
  let id s = check Alcotest.string s s (roundtrip s) in
  id {|{"a":1,"b":[true,false,null,"x"],"c":2.5,"d":{}}|};
  id {|[-3,0.125,"\"\\\n"]|};
  id "true";
  check Alcotest.string "whitespace tolerated" {|{"a":[1,2]}|}
    (roundtrip " {\t\"a\" : [ 1 , 2 ] }\n");
  check Alcotest.string "exponent becomes float" "1000.0" (roundtrip "1e3");
  check Alcotest.string "unicode escape" {|"aA"|} (roundtrip {|"aA"|});
  match Json.of_string (Json.to_string (Json.Float 0.1)) with
  | Ok (Json.Float f) -> check (Alcotest.float 0.0) "float exact" 0.1 f
  | _ -> Alcotest.fail "float roundtrip"

let test_json_parse_errors () =
  let rejects s =
    match Json.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "should reject %s" s
  in
  rejects "";
  rejects "{";
  rejects "[1,2,";
  rejects {|{"a" 1}|};
  rejects "1 x";
  rejects "nul";
  rejects {|"unterminated|}

(* --- Schema validation ---------------------------------------------- *)

let ok_line ~task =
  Json.to_string
    (Schema.ok_row ~experiment:"t" ~task ~attempts:1 ~wall_s:1.0
       ~data:(Json.Obj [ ("v", Json.Int 1) ])
       ~obs:(Json.Obj []))

let meta_line ~tasks =
  Json.to_string (Schema.meta_line ~experiment:"t" ~params:[] ~tasks)

let test_schema_validate () =
  (match Schema.validate_lines [ meta_line ~tasks:2; ok_line ~task:"a";
                                 ok_line ~task:"b" ] with
  | Ok 2 -> ()
  | Ok n -> Alcotest.failf "expected 2 rows, got %d" n
  | Error e -> Alcotest.fail e);
  let rejects name lines =
    match Schema.validate_lines lines with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "should reject %s" name
  in
  rejects "row count mismatch" [ meta_line ~tasks:2; ok_line ~task:"a" ];
  rejects "duplicate task"
    [ meta_line ~tasks:2; ok_line ~task:"a"; ok_line ~task:"a" ];
  rejects "missing meta" [ ok_line ~task:"a" ];
  rejects "garbage line" [ meta_line ~tasks:1; "{not json" ]

(* --- Spec validation ------------------------------------------------- *)

let test_spec_validation () =
  let t key = Spec.task ~key (fun _ -> Json.Obj []) in
  (match Spec.v ~name:"bad key" [ t "a" ] with
  | _ -> Alcotest.fail "space in experiment name must be rejected"
  | exception Invalid_argument _ -> ());
  (match Spec.v ~name:"dup" [ t "a"; t "a" ] with
  | _ -> Alcotest.fail "duplicate task keys must be rejected"
  | exception Invalid_argument _ -> ());
  match Spec.task ~key:"bad key" (fun _ -> Json.Obj []) with
  | _ -> Alcotest.fail "space in task key must be rejected"
  | exception Invalid_argument _ -> ()

(* --- Runner: fault isolation ----------------------------------------- *)

let test_runner_error_isolation () =
  let dir = scratch_dir () in
  let json = Filename.concat dir "BENCH_iso.json" in
  let ckpt = Filename.concat dir "iso.ckpt" in
  let tasks =
    [
      Spec.task ~key:"a" (fun _ -> Json.Obj [ ("v", Json.Int 1) ]);
      Spec.task ~key:"bad" (fun _ -> deep 2 |> ignore; Json.Obj []);
      Spec.task ~key:"c" (fun _ -> Json.Obj [ ("v", Json.Int 3) ]);
    ]
  in
  let config =
    {
      Runner.default_config with
      domains = Some 2;
      json_path = Some json;
      checkpoint_path = Some ckpt;
      clock = Some (ticking_clock ());
    }
  in
  let outcomes = Runner.run ~config (Spec.v ~name:"iso" tasks) in
  check
    Alcotest.(list string)
    "spec order" [ "a"; "bad"; "c" ]
    (List.map (fun o -> o.Outcome.key) outcomes);
  check
    Alcotest.(list bool)
    "siblings of a failure still report" [ true; false; true ]
    (List.map Outcome.ok outcomes);
  (match Outcome.error (List.nth outcomes 1) with
  | Some (e, _) -> check Alcotest.bool "exn text" true (contains e "deep-boom")
  | None -> Alcotest.fail "failed task must expose its error");
  (* The stream carries all three rows — two ok, one structured error —
     and validates. *)
  (match Schema.validate_file json with
  | Ok 3 -> ()
  | Ok n -> Alcotest.failf "expected 3 rows, got %d" n
  | Error e -> Alcotest.fail e);
  let stream = read_file json in
  check Alcotest.bool "error row in stream" true
    (contains stream {|"status":"error"|});
  check Alcotest.bool "backtrace recorded" true
    (contains stream {|"backtrace":|});
  (* A failed task keeps the checkpoint so --resume retries it. *)
  check Alcotest.bool "checkpoint kept on failure" true (Sys.file_exists ckpt);
  Sys.remove json;
  Sys.remove ckpt;
  Sys.rmdir dir

(* --- Runner: retry --------------------------------------------------- *)

let test_runner_retry_transient () =
  let calls = Atomic.make 0 in
  let task =
    Spec.task ~key:"flaky" (fun _ ->
        let n = Atomic.fetch_and_add calls 1 in
        if n < 2 then failwith "transient" else Json.Obj [ ("n", Json.Int n) ])
  in
  let config =
    {
      Runner.default_config with
      retries = 2;
      domains = Some 1;
      clock = Some (ticking_clock ());
    }
  in
  match Runner.run ~config (Spec.v ~name:"retry" [ task ]) with
  | [ o ] ->
    check Alcotest.bool "eventually ok" true (Outcome.ok o);
    check Alcotest.int "attempts recorded" 3 (Outcome.attempts o);
    check Alcotest.int "task body ran three times" 3 (Atomic.get calls)
  | _ -> Alcotest.fail "one outcome expected"

let test_runner_retry_respects_retryable () =
  let calls = Atomic.make 0 in
  let task =
    Spec.task ~key:"fatal" (fun _ ->
        Atomic.incr calls;
        invalid_arg "permanent")
  in
  let config =
    {
      Runner.default_config with
      retries = 5;
      retryable = (function Failure _ -> true | _ -> false);
      domains = Some 1;
    }
  in
  match Runner.run ~config (Spec.v ~name:"fatal" [ task ]) with
  | [ o ] ->
    check Alcotest.bool "error outcome" false (Outcome.ok o);
    check Alcotest.int "no retry of non-retryable" 1 (Atomic.get calls);
    check Alcotest.int "attempts" 1 (Outcome.attempts o)
  | _ -> Alcotest.fail "one outcome expected"

(* --- Runner: checkpoint / resume ------------------------------------- *)

(* The acceptance scenario: a run dies with work left (stood in for
   here by a failing task — kill and crash leave the same on-disk
   state), a second run resumes, skips what finished, and the final
   stream is byte-identical to one from an uninterrupted run. *)
let test_runner_resume_byte_identical () =
  let dir = scratch_dir () in
  let json = Filename.concat dir "BENCH_r.json" in
  let ckpt = Filename.concat dir "r.ckpt" in
  let runs_a = Atomic.make 0 and runs_c = Atomic.make 0 in
  let tasks ~b_fails =
    [
      Spec.task ~key:"a" (fun _ ->
          Atomic.incr runs_a;
          Json.Obj [ ("v", Json.Int 1) ]);
      Spec.task ~key:"b" (fun _ ->
          if b_fails then failwith "interrupted" else Json.Obj [ ("v", Json.Int 2) ]);
      Spec.task ~key:"c" (fun _ ->
          Atomic.incr runs_c;
          Json.Obj [ ("v", Json.Int 3) ]);
    ]
  in
  let config ?(resume = false) () =
    {
      Runner.default_config with
      domains = Some 1;
      json_path = Some json;
      checkpoint_path = Some ckpt;
      resume;
      clock = Some (ticking_clock ());
    }
  in
  (* Reference: the uninterrupted run. *)
  ignore (Runner.run ~config:(config ()) (Spec.v ~name:"r" (tasks ~b_fails:false)));
  let reference = read_file json in
  check Alcotest.bool "fully-ok run drops its checkpoint" false
    (Sys.file_exists ckpt);
  (* The interrupted run: a and c complete and checkpoint, b does not. *)
  ignore (Runner.run ~config:(config ()) (Spec.v ~name:"r" (tasks ~b_fails:true)));
  check Alcotest.bool "interrupted run keeps its checkpoint" true
    (Sys.file_exists ckpt);
  check Alcotest.int "a ran in both runs so far" 2 (Atomic.get runs_a);
  (* Resume: a and c replay from the checkpoint, only b executes. *)
  let outcomes =
    Runner.run ~config:(config ~resume:true ())
      (Spec.v ~name:"r" (tasks ~b_fails:false))
  in
  check Alcotest.int "a skipped on resume" 2 (Atomic.get runs_a);
  check Alcotest.int "c skipped on resume" 2 (Atomic.get runs_c);
  check
    Alcotest.(list bool)
    "replay flags" [ true; false; true ]
    (List.map (fun o -> o.Outcome.replayed) outcomes);
  check Alcotest.string "resumed stream is byte-identical" reference
    (read_file json);
  check Alcotest.bool "completed resume drops the checkpoint" false
    (Sys.file_exists ckpt);
  Sys.remove json;
  Sys.rmdir dir

let test_checkpoint_torn_line () =
  let line =
    Json.to_string
      (Schema.ok_row ~experiment:"t" ~task:"a" ~attempts:1 ~wall_s:1.0
         ~data:(Json.Obj [ ("v", Json.Int 1) ])
         ~obs:(Json.Obj []))
  in
  let path = Filename.temp_file "atp_ckpt" ".ckpt" in
  (* A kill mid-append leaves a torn trailing line. *)
  Out_channel.with_open_text path (fun oc ->
      output_string oc (line ^ "\n");
      output_string oc {|{"schema":"atp.bench/1","kind":"row","task":"b","trunc|});
  let loaded = Checkpoint.load path in
  check
    Alcotest.(list string)
    "only the well-formed row survives" [ "a" ] (List.map fst loaded);
  check Alcotest.string "stored bytes are verbatim" line
    (List.assoc "a" loaded);
  (* Resuming over it replays a and re-runs the torn b. *)
  let runs_b = Atomic.make 0 in
  let tasks =
    [
      Spec.task ~key:"a" (fun _ -> Alcotest.fail "a must not re-run");
      Spec.task ~key:"b" (fun _ ->
          Atomic.incr runs_b;
          Json.Obj [ ("v", Json.Int 2) ]);
    ]
  in
  let config =
    {
      Runner.default_config with
      domains = Some 1;
      checkpoint_path = Some path;
      resume = true;
      clock = Some (ticking_clock ());
    }
  in
  let outcomes = Runner.run ~config (Spec.v ~name:"t" tasks) in
  check Alcotest.int "torn task re-ran" 1 (Atomic.get runs_b);
  check
    Alcotest.(list bool)
    "replay flags" [ true; false ]
    (List.map (fun o -> o.Outcome.replayed) outcomes);
  check Alcotest.bool "all ok" true (List.for_all Outcome.ok outcomes)

(* --- Report ----------------------------------------------------------- *)

let test_shape_line_degenerate () =
  check Alcotest.bool "empty sweep reports, not raises" true
    (contains (Report.shape_line []) "no rows");
  let single = Report.shape_line [ ("h=4", 100, 50) ] in
  check Alcotest.bool "singleton names its row" true (contains single "h=4");
  check Alcotest.bool "singleton is a single-row summary" true
    (contains single "single row");
  let full =
    Report.shape_line [ ("h=1", 10, 1000); ("h=4", 40, 400); ("h=16", 160, 10) ]
  in
  check Alcotest.bool "trend uses actual first key" true (contains full "h=1");
  check Alcotest.bool "trend uses actual last key" true (contains full "h=16");
  check Alcotest.bool "IO ratio" true (contains full "x16")

let test_report_table_failure_row () =
  let dir = scratch_dir () in
  let json = Filename.concat dir "BENCH_tbl.json" in
  let tasks =
    [
      Spec.task ~key:"good" (fun _ -> Json.Obj [ ("v", Json.Int 7) ]);
      Spec.task ~key:"bad" (fun _ -> failwith "nope");
    ]
  in
  let config =
    { Runner.default_config with domains = Some 1; json_path = Some json }
  in
  let outcomes = Runner.run ~config (Spec.v ~name:"tbl" tasks) in
  let buf_path = Filename.concat dir "table.txt" in
  Out_channel.with_open_text buf_path (fun oc ->
      Report.print_table ~out:oc
        ~columns:[ Report.col_int ~field:"v" "v" ]
        outcomes);
  let table = read_file buf_path in
  check Alcotest.bool "value rendered" true (contains table "7");
  check Alcotest.bool "failure rendered in place" true
    (contains table "FAILED");
  check Alcotest.bool "failure note lists the key" true
    (contains table "1/2 tasks failed: bad");
  Sys.remove json;
  Sys.remove buf_path;
  Sys.rmdir dir

(* --- Outcome accessors ------------------------------------------------ *)

let test_outcome_accessors () =
  let tasks =
    [
      Spec.task ~key:"k" (fun reg ->
          Atp_obs.Counter.add (Atp_obs.Registry.counter reg "work.items") 5;
          Json.Obj [ ("n", Json.Int 9); ("f", Json.Float 2.5) ]);
    ]
  in
  let config =
    {
      Runner.default_config with
      domains = Some 1;
      clock = Some (ticking_clock ());
    }
  in
  match Runner.run ~config (Spec.v ~name:"acc" tasks) with
  | [ o ] ->
    check Alcotest.int "int_field" 9 (Option.get (Outcome.int_field "n" o));
    check (Alcotest.float 0.0) "float_field" 2.5
      (Option.get (Outcome.float_field "f" o));
    check (Alcotest.float 0.0) "wall_s from injected clock" 1.0
      (Outcome.wall_s o);
    (match Option.bind (Outcome.obs o) (Json.member "counters") with
    | Some (Json.Obj kvs) ->
      check Alcotest.bool "private registry snapshot captured" true
        (List.mem_assoc "work.items" kvs)
    | _ -> Alcotest.fail "obs counters missing")
  | _ -> Alcotest.fail "one outcome expected"

(* --------------------------------------------------------------------- *)

let () =
  Alcotest.run "exp"
    [
      ( "parallel",
        [
          Alcotest.test_case "map_results isolates failures" `Quick
            test_map_results_isolation;
          Alcotest.test_case "map_results all ok" `Quick test_map_results_all_ok;
          Alcotest.test_case "backtraces preserved" `Quick
            test_map_backtrace_preserved;
        ] );
      ( "stats",
        [
          Alcotest.test_case "empty summary" `Quick test_empty_summary;
          Alcotest.test_case "empty histogram snapshot" `Quick
            test_empty_histogram_snapshot;
        ] );
      ( "json",
        [
          Alcotest.test_case "parse roundtrip" `Quick test_json_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        ] );
      ( "schema",
        [
          Alcotest.test_case "validate streams" `Quick test_schema_validate;
          Alcotest.test_case "spec validation" `Quick test_spec_validation;
        ] );
      ( "runner",
        [
          Alcotest.test_case "error isolation" `Quick
            test_runner_error_isolation;
          Alcotest.test_case "retry transient" `Quick
            test_runner_retry_transient;
          Alcotest.test_case "retryable filter" `Quick
            test_runner_retry_respects_retryable;
          Alcotest.test_case "resume byte-identical" `Quick
            test_runner_resume_byte_identical;
          Alcotest.test_case "torn checkpoint line" `Quick
            test_checkpoint_torn_line;
          Alcotest.test_case "outcome accessors" `Quick test_outcome_accessors;
        ] );
      ( "report",
        [
          Alcotest.test_case "shape line degenerate sweeps" `Quick
            test_shape_line_degenerate;
          Alcotest.test_case "table renders failures" `Quick
            test_report_table_failure_row;
        ] );
    ]
