(* The fused replay core must be a pure speedup: byte-identical
   reports and obs snapshots against the generic paths it specializes,
   for every policy pair, workload shape, and shard count — plus
   round-trip laws for the zero-copy chunk visitor it is built on. *)

open Atp_util
open Atp_core
open Atp_paging
open Atp_workloads
module Obs = Atp_obs
module Engine = Atp_engine.Engine

let check = Alcotest.check

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let report : Simulation.report Alcotest.testable =
  Alcotest.testable
    (fun ppf (r : Simulation.report) ->
      Format.fprintf ppf
        "{accesses=%d; ios=%d; tlb_fills=%d; decoding_misses=%d; \
         failures=%d; max_bucket_load=%d}"
        r.Simulation.accesses r.ios r.tlb_fills r.decoding_misses
        r.failures_total r.max_bucket_load)
    ( = )

let params = Params.derive ~p:(1 lsl 11) ~w:64 ()

let traces =
  let n = 30_000 in
  [
    ( "zipf-hot",
      Workload.generate
        (Simple.zipf ~s:1.0 ~virtual_pages:4_096 (Prng.create ~seed:31 ()))
        n );
    ( "zipf-stress",
      Workload.generate
        (Simple.zipf ~s:0.9 ~virtual_pages:(1 lsl 16) (Prng.create ~seed:32 ()))
        n );
    ( "graph-walk",
      Workload.generate
        (Graph_walk.create ~virtual_pages:8_192 (Prng.create ~seed:33 ()))
        n );
    ( "uniform",
      Workload.generate
        (Simple.uniform ~virtual_pages:2_048 (Prng.create ~seed:34 ()))
        n );
  ]

(* Policy pairs: every functor-specialized combination the fast path
   dispatches on, plus one pair that must take the [of_instances]
   closure fallback. *)
let pairs =
  [
    ("lru", "lru");
    ("lru", "fifo");
    ("fifo", "lru");
    ("fifo", "fifo");
    ("lru", "2q");
    ("2q", "lru");
    ("2q", "2q");
    ("mru", "lru");
    ("lru", "clock");
  ]

let generic_sim ?obs ~x_name ~y_name () =
  let x =
    Policy.instantiate_fast (Registry.find_fast_exn x_name)
      ~rng:(Prng.create ~seed:11 ())
      ~capacity:64 ()
  in
  let y =
    Policy.instantiate_fast (Registry.find_fast_exn y_name)
      ~rng:(Prng.create ~seed:13 ())
      ~capacity:256 ()
  in
  Simulation.create ?obs ~seed:7 ~params ~x ~y ()

let fused_sim ?obs ~x_name ~y_name () =
  Sim_fused.for_names ?obs ~seed:7 ~params ~x_name ~x_capacity:64
    ~x_rng:(Prng.create ~seed:11 ())
    ~y_name ~y_capacity:256
    ~y_rng:(Prng.create ~seed:13 ())
    ()

(* --- fused = generic: reports and obs snapshots --------------------- *)

let test_fused_matches_generic () =
  List.iter
    (fun (x_name, y_name) ->
      List.iter
        (fun (wname, trace) ->
          let reg_g = Obs.Registry.create () in
          let z = generic_sim ~obs:(Obs.Scope.v reg_g) ~x_name ~y_name () in
          let r_gen = Simulation.run z trace in
          let reg_f = Obs.Registry.create () in
          let f = fused_sim ~obs:(Obs.Scope.v reg_f) ~x_name ~y_name () in
          let r_fus = Sim_fused.run_fused f trace in
          let label =
            Printf.sprintf "%s/%s on %s" x_name y_name wname
          in
          check report label r_gen r_fus;
          check Alcotest.string (label ^ " (obs snapshot)")
            (Obs.Registry.snapshot_string reg_g)
            (Obs.Registry.snapshot_string reg_f))
        traces)
    pairs

let test_fused_matches_generic_with_warmup () =
  let warmup, trace =
    match traces with
    | (_, w) :: (_, t) :: _ -> (w, t)
    | _ -> assert false
  in
  List.iter
    (fun (x_name, y_name) ->
      let z = generic_sim ~x_name ~y_name () in
      let r_gen = Simulation.run ~warmup z trace in
      let f = fused_sim ~x_name ~y_name () in
      let r_fus = Sim_fused.run_fused ~warmup f trace in
      check report
        (Printf.sprintf "%s/%s with warmup" x_name y_name)
        r_gen r_fus)
    [ ("lru", "lru"); ("2q", "lru"); ("mru", "lru") ]

(* The specialized dispatcher must actually specialize the advertised
   pairs and decline the rest. *)
let test_specialized_coverage () =
  let spec x_name y_name =
    Sim_fused.specialized ~seed:7 ~params ~x_name ~x_capacity:64 ~y_name
      ~y_capacity:256 ()
  in
  List.iter
    (fun (x_name, y_name) ->
      let expect_some = List.mem (x_name, y_name) Sim_fused.specialized_pairs in
      check Alcotest.bool
        (Printf.sprintf "specialized %s/%s" x_name y_name)
        expect_some
        (Option.is_some (spec x_name y_name)))
    (pairs @ [ ("clock", "mru") ])

(* --- sharded engine replay: fused = generic, all shard counts ------- *)

let test_engine_fused_matches_generic () =
  let trace = List.assoc "zipf-stress" traces in
  let path = Filename.temp_file "atp_test_fused" ".atps" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Trace.Stream.with_writer path (fun w ->
          Array.iter (Trace.Stream.push w) trace);
      let make_sim () = generic_sim ~x_name:"lru" ~y_name:"lru" () in
      let make_fused () = fused_sim ~x_name:"lru" ~y_name:"lru" () in
      let seq = Engine.replay_sequential ~make_sim (Trace.Stream.source path) in
      let seq_fused = Engine.replay_stream_fused ~make_fused path in
      check Alcotest.bool "sequential fused = sequential generic" true
        (seq = seq_fused);
      let seq_blocks =
        Engine.replay_sequential_fused ~make_fused
          (Engine.block_source_of_stream path)
      in
      check Alcotest.bool "block-sequential fused = sequential generic" true
        (seq = seq_blocks);
      List.iter
        (fun shards ->
          let config =
            { Engine.shards; epoch_len = 4_096; warmup = 4_096; domains = None }
          in
          let gen =
            Engine.replay ~config ~make_sim (Trace.Stream.source path)
          in
          let fus =
            Engine.replay_fused ~config ~make_fused
              (Engine.block_source_of_stream path)
          in
          check Alcotest.bool
            (Printf.sprintf "sharded fused = sharded generic (shards=%d)"
               shards)
            true (gen = fus))
        [ 1; 2; 4 ])

(* --- access_fast = access for every registered policy --------------- *)

let prop_access_fast_equals_access =
  QCheck.Test.make ~count:60
    ~name:"access_fast mirrors access for every registry policy"
    QCheck.(
      triple (int_range 1 24) (int_range 2 60)
        (list_of_size Gen.(int_range 1 300) (int_bound 1000)))
    (fun (capacity, universe, pages) ->
      let trace = List.map (fun p -> p mod universe) pages in
      List.for_all
        (fun name ->
          let fresh () =
            Policy.instantiate_fast (Registry.find_fast_exn name)
              ~rng:(Prng.create ~seed:5 ())
              ~capacity ()
          in
          let boxed = fresh () and fast = fresh () in
          List.for_all
            (fun page ->
              boxed.Policy.access page
              = Policy.outcome_of_fast (fast.Policy.access_fast page))
            trace)
        Registry.names)

(* --- chunk visitor round-trips -------------------------------------- *)

let with_stream pages chunk_size f =
  let path = Filename.temp_file "atp_test_chunks" ".atps" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Trace.Stream.with_writer ~chunk_size path (fun w ->
          List.iter (Trace.Stream.push w) pages);
      Trace.Stream.with_reader path f)

let prop_fold_chunks_roundtrip =
  QCheck.Test.make ~count:80 ~name:"fold_chunks concatenates to the trace"
    QCheck.(
      pair (int_range 1 17)
        (list_of_size Gen.(int_range 0 300) (int_bound 10_000)))
    (fun (chunk_size, pages) ->
      let got =
        with_stream pages chunk_size (fun r ->
            Trace.Stream.fold_chunks
              (fun acc buf n ->
                let acc = ref acc in
                for i = 0 to n - 1 do
                  acc := Bigarray.Array1.get buf i :: !acc
                done;
                !acc)
              [] r)
      in
      List.rev got = pages)

let prop_read_into_roundtrip =
  QCheck.Test.make ~count:80
    ~name:"read_into reassembles the trace for any block pattern"
    QCheck.(
      triple (int_range 1 17) (int_range 1 23)
        (list_of_size Gen.(int_range 0 300) (int_bound 10_000)))
    (fun (chunk_size, block, pages) ->
      let n = List.length pages in
      let got =
        with_stream pages chunk_size (fun r ->
            let dst = Array.make (max n 1) (-1) in
            let rec pull pos =
              if pos >= n then pos
              else begin
                let want = min block (n - pos) in
                let got = Trace.Stream.read_into r dst pos want in
                if got = 0 then pos else pull (pos + got)
              end
            in
            let filled = pull 0 in
            Array.sub dst 0 filled
        )
      in
      Array.to_list got = pages)

let prop_read_into_agrees_with_next_chunk =
  QCheck.Test.make ~count:60
    ~name:"read_into drains exactly what next_chunk would"
    QCheck.(
      pair (int_range 1 13)
        (list_of_size Gen.(int_range 0 200) (int_bound 10_000)))
    (fun (chunk_size, pages) ->
      let via_chunks =
        with_stream pages chunk_size (fun r ->
            let rec go acc =
              match Trace.Stream.next_chunk r with
              | None -> List.concat (List.rev acc)
              | Some c ->
                let l = ref [] in
                for i = Bigarray.Array1.dim c - 1 downto 0 do
                  l := Bigarray.Array1.get c i :: !l
                done;
                go (!l :: acc)
            in
            go [])
      in
      via_chunks = pages)

(* --- batched TLB hierarchy probe = scalar lookups ------------------- *)

let hierarchy_stats h =
  ( Atp_tlb.Hierarchy.lookups h,
    Atp_tlb.Hierarchy.total_cycles h,
    Atp_tlb.Hierarchy.l1_stats h,
    Atp_tlb.Hierarchy.l2_stats h,
    Atp_tlb.Hierarchy.tcache_stats h )

let prop_lookup_batch_equals_scalar =
  QCheck.Test.make ~count:60 ~name:"Hierarchy.lookup_batch = scalar lookups"
    QCheck.(
      triple (int_range 1 40)
        (list_of_size Gen.(int_range 1 400) (int_bound 200))
        (* Victim store off, or small enough to churn. *)
        (oneofl [ 0; 3; 8 ]))
    (fun (universe, keys, tcache_entries) ->
      let keys = List.map (fun k -> k mod universe) keys in
      let config =
        { Atp_tlb.Hierarchy.l1_entries = 4;
          l2_entries = 16;
          l1_latency = 1;
          l2_latency = 7;
          tcache_entries;
          tcache_latency = 30;
        }
      in
      (* Scalar reference: lookup, walk + insert on miss. *)
      let hs = Atp_tlb.Hierarchy.create ~config () in
      let scalar_misses = ref 0 in
      List.iter
        (fun key ->
          match Atp_tlb.Hierarchy.lookup hs key with
          | Some _, _ -> ()
          | None, _ ->
            incr scalar_misses;
            Atp_tlb.Hierarchy.insert hs key (key * 3))
        keys;
      (* Batched path over the same keys in one chunk. *)
      let hb = Atp_tlb.Hierarchy.create ~config () in
      let chunk =
        Bigarray.Array1.create Bigarray.int Bigarray.c_layout
          (List.length keys)
      in
      List.iteri (fun i k -> Bigarray.Array1.set chunk i k) keys;
      (* Feed block by block so refills interleave as in the scalar
         run; batch misses must walk-and-insert just like the scalar
         loop for the states to stay identical. *)
      let batch_misses = ref 0 in
      let n = Bigarray.Array1.dim chunk in
      let block = 7 in
      let rec go pos =
        if pos < n then begin
          let len = min block (n - pos) in
          let r =
            Atp_tlb.Hierarchy.lookup_batch hb
              ~on_miss:(fun key ->
                incr batch_misses;
                Atp_tlb.Hierarchy.insert hb key (key * 3))
              chunk pos len
          in
          ignore (r : Atp_tlb.Hierarchy.batch_result);
          go (pos + len)
        end
      in
      go 0;
      !scalar_misses = !batch_misses && hierarchy_stats hs = hierarchy_stats hb)

let () =
  Alcotest.run "fused"
    [
      ( "differential",
        [
          Alcotest.test_case "fused = generic (reports + obs)" `Quick
            test_fused_matches_generic;
          Alcotest.test_case "fused = generic under warmup" `Quick
            test_fused_matches_generic_with_warmup;
          Alcotest.test_case "specialized pair coverage" `Quick
            test_specialized_coverage;
          Alcotest.test_case "engine sharded fused = generic" `Quick
            test_engine_fused_matches_generic;
        ] );
      ("access_fast", qsuite [ prop_access_fast_equals_access ]);
      ( "chunks",
        qsuite
          [
            prop_fold_chunks_roundtrip;
            prop_read_into_roundtrip;
            prop_read_into_agrees_with_next_chunk;
          ] );
      ("tlb-batch", qsuite [ prop_lookup_batch_equals_scalar ]);
    ]
