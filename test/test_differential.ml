(* Differential tests: independent implementations of the same
   quantity must agree.

   - Belady's OPT is offline-optimal, so on any shared trace it can
     never incur more misses than any registered online policy.
   - Mattson stack distances yield the LRU miss count for every
     capacity in one pass; a direct LRU simulation per capacity must
     reproduce the same curve. *)

open Atp_util
open Atp_paging

let check = Alcotest.check

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let random_trace ~seed ~n ~universe =
  let rng = Prng.create ~seed () in
  Array.init n (fun _ -> Prng.int rng universe)

(* A crude Zipf-ish skew: square the uniform draw so low page ids
   dominate, the shape paging experiments care about. *)
let skewed_trace ~seed ~n ~universe =
  let rng = Prng.create ~seed () in
  Array.init n (fun _ ->
      let u = Prng.float rng in
      int_of_float (u *. u *. float_of_int universe) mod universe)

let lru_misses capacity trace =
  (Sim.run (Policy.instantiate (module Lru) ~capacity ()) trace).Sim.misses

(* --- OPT lower-bounds every online policy --------------------------- *)

let prop_opt_lower_bounds_all =
  QCheck.Test.make ~name:"OPT <= every online policy on random streams"
    ~count:40
    QCheck.(
      triple (int_range 1 12) (int_range 2 40)
        (list_of_size Gen.(int_range 1 250) (int_bound 1000)))
    (fun (capacity, universe, pages) ->
      let trace =
        Array.of_list (List.map (fun p -> p mod universe) pages)
      in
      let opt = Opt.misses ~capacity trace in
      List.for_all
        (fun (module P : Policy.S) ->
          let rng = Prng.create ~seed:123 () in
          let inst = Policy.instantiate (module P) ~rng ~capacity () in
          opt <= (Sim.run inst trace).Sim.misses)
        Registry.all)

let test_opt_lower_bounds_on_skewed () =
  (* Big deterministic instance — beyond qcheck's small cases. *)
  let trace = skewed_trace ~seed:31 ~n:20_000 ~universe:400 in
  List.iter
    (fun capacity ->
      let opt = Opt.misses ~capacity trace in
      List.iter
        (fun (module P : Policy.S) ->
          let rng = Prng.create ~seed:77 () in
          let inst = Policy.instantiate (module P) ~rng ~capacity () in
          let misses = (Sim.run inst trace).Sim.misses in
          check Alcotest.bool
            (Printf.sprintf "OPT(%d) <= %s(%d)" opt P.name misses)
            true (opt <= misses))
        Registry.all)
    [ 8; 64; 256 ]

(* --- Mattson curves vs direct LRU simulation ------------------------ *)

let prop_mattson_reproduces_lru_curve =
  QCheck.Test.make ~name:"Mattson misses = simulated LRU, all capacities"
    ~count:60
    QCheck.(
      pair (int_range 2 24)
        (list_of_size Gen.(int_range 1 200) (int_bound 1000)))
    (fun (universe, pages) ->
      let trace =
        Array.of_list (List.map (fun p -> p mod universe) pages)
      in
      let m = Mattson.of_trace trace in
      List.for_all
        (fun capacity -> Mattson.misses m capacity = lru_misses capacity trace)
        [ 1; 2; 3; 5; 8; 13; 21 ])

let test_mattson_curve_on_large_trace () =
  let trace = random_trace ~seed:5 ~n:30_000 ~universe:512 in
  let m = Mattson.of_trace trace in
  let capacities = [ 1; 4; 16; 64; 128; 256; 512; 1024 ] in
  List.iter
    (fun (c, mattson) ->
      check Alcotest.int
        (Printf.sprintf "capacity %d" c)
        (lru_misses c trace) mattson)
    (Mattson.curve m ~capacities);
  check Alcotest.int "beyond-footprint capacity leaves only cold misses"
    (Mattson.cold_misses m)
    (Mattson.misses m 1024)

let test_mattson_cold_misses_are_distinct_pages () =
  let trace = skewed_trace ~seed:9 ~n:10_000 ~universe:300 in
  let m = Mattson.of_trace trace in
  check Alcotest.int "cold misses = distinct pages"
    (Mattson.distinct_pages m) (Mattson.cold_misses m)

let () =
  Alcotest.run "differential"
    [
      ( "opt vs online",
        qsuite [ prop_opt_lower_bounds_all ]
        @ [
            Alcotest.test_case "skewed large trace" `Quick
              test_opt_lower_bounds_on_skewed;
          ] );
      ( "mattson vs lru",
        qsuite [ prop_mattson_reproduces_lru_curve ]
        @ [
            Alcotest.test_case "large trace curve" `Quick
              test_mattson_curve_on_large_trace;
            Alcotest.test_case "cold misses" `Quick
              test_mattson_cold_misses_are_distinct_pages;
          ] );
    ]
