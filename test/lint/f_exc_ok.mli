val checked_get : int array -> int -> int
(** Bounds-checked array read.

    @raise Invalid_argument if the index is out of bounds. *)
