val defaults : int list

val pack : int -> int -> int

val weighted : int -> int -> int -> int

val boxed : int -> int option

val untagged_pair : int -> int -> int * int
