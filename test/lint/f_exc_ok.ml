(* Clean: the possible raise is part of the documented contract. *)

let checked_get arr i =
  if i < 0 || i >= Array.length arr then invalid_arg "f_exc_ok.checked_get";
  arr.(i)
