(* Clean: comparisons at immediate and immutable-structural types. *)

type level = Low | Mid | High

let max_level (a : level) (b : level) = max a b

let same_page (a : int) (b : int) = a = b

let first_hit (a : int option) (b : int option) = min a b
