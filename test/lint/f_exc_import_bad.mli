val parse_radix : string -> int
(** The numeric base named by a radix flag. *)

val import_line : ?page_bits:int -> string -> int
(** One hex trace line to a virtual page number. *)
