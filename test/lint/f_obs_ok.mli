val scope : Atp_obs.Scope.t

val hits : Atp_obs.Counter.t

val walk_steps : Atp_obs.Counter.t
