type level = Low | Mid | High

val max_level : level -> level -> level

val same_page : int -> int -> bool

val first_hit : int option -> int option -> int option
