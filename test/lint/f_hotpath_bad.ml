(* Violates hot-path-hashing: a polymorphic Hashtbl keyed by int. *)

let table : (int, string) Hashtbl.t = Hashtbl.create 16

let add k v = Hashtbl.replace table k v
