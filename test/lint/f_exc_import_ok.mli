exception Parse_error of { line : int; what : string }
(** A trace line that cannot be decoded. *)

val parse_radix : string -> int
(** The numeric base named by a radix flag.
    @raise Parse_error on an unknown name. *)

val import_line : ?page_bits:int -> line_no:int -> string -> int
(** One hex trace line to a virtual page number.
    @raise Parse_error on a malformed address.
    @raise Invalid_argument if [page_bits] is outside [0, 62]. *)
