(* Violates domain-safety, fleet-style: tenant-sharded replay ships
   per-shard closures across domains, but every shard funnels its
   per-tenant bookkeeping through one shared mutable tenant table — a
   locally-bound Int_table.Poly captured by the closure, and a named
   recorder that writes a module-level table. *)

let replay_shared_table shards =
  let tenant_accesses : int Atp_util.Int_table.Poly.t =
    Atp_util.Int_table.Poly.create ()
  in
  let counts =
    Atp_util.Parallel.map
      (fun shard ->
        let tenant = shard land 7 in
        let seen =
          Atp_util.Int_table.Poly.find_or tenant_accesses tenant 0
        in
        Atp_util.Int_table.Poly.set tenant_accesses tenant (seen + 1);
        seen + 1)
      shards
  in
  List.fold_left ( + ) 0 counts

let fleet_table : int Atp_util.Int_table.Poly.t =
  Atp_util.Int_table.Poly.create ()

let record_departure tenant =
  let n = Atp_util.Int_table.Poly.find_or fleet_table tenant 0 in
  Atp_util.Int_table.Poly.set fleet_table tenant (n + 1);
  n + 1

let departures tenants = Atp_util.Parallel.map record_departure tenants
