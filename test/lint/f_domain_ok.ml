(* Clean under domain-safety: each shard owns its mutable state, the
   only shared primitives are the sanctioned ones, and the audited
   read-only table carries the escape hatch. *)

let sum_owned chunks =
  Atp_util.Parallel.map
    (fun chunk ->
      let acc = ref 0 in
      List.iter (fun x -> acc := !acc + x) chunk;
      !acc)
    chunks

let progress = Atomic.make 0

let count_atomic xs =
  Atp_util.Parallel.map
    (fun x ->
      Atomic.incr progress;
      x)
    xs

let lookup : (string, int) Hashtbl.t = Hashtbl.create 8

(* Audited: [lookup] is filled before any parallel map starts and only
   read inside one. *)
let[@atplint.domain_safe] read_only_lookup s =
  match Hashtbl.find_opt lookup s with Some v -> v | None -> 0

let lookups xs = Atp_util.Parallel.map read_only_lookup xs
