val scope : Atp_obs.Scope.t

val misses : Atp_obs.Counter.t

val depth : Atp_obs.Gauge.t
