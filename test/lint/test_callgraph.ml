(* Unit tests for the whole-program analysis core: canonical-name
   resolution across dune's unit mangling, cross-module edge lookup,
   conservatism on functor applications and unknown callees, and the
   cycle-safe reachability queries.  Hand-built graphs, no cmts. *)

module Cg = Atplint_lib.Callgraph

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let call ?(applied = true) ?(allows = []) callee =
  {
    Cg.callee;
    c_loc = Location.none;
    applied;
    callee_local = None;
    call_allows = allows;
  }

let alloc ?(allows = []) what =
  { Cg.a_loc = Location.none; a_what = what; a_allows = allows }

let global name what =
  {
    Cg.cap_name = name;
    cap_loc = Location.none;
    cap_what = what;
    cap_allows = [];
  }

let node ?(hot = false) ?(calls = []) ?(allocs = []) ?(globals = []) ~modname
    id =
  {
    Cg.id;
    n_file = "lib/fake.ml";
    n_modname = modname;
    n_loc = Location.none;
    n_hot = hot;
    n_in_functor = false;
    n_allows = [];
    n_calls = calls;
    n_allocs = allocs;
    n_mut_globals = globals;
  }

let graph nodes =
  let t = Cg.create () in
  List.iter (Cg.add_node t) nodes;
  t

(* ------------------------------------------------------------------ *)
(* Name resolution                                                     *)
(* ------------------------------------------------------------------ *)

let test_candidates_wrapper_alias () =
  let cands =
    Cg.Name.candidates ~modname:"Atp_engine__Engine" "Atp_util.Parallel.map"
  in
  check Alcotest.(list string) "most specific first"
    [
      "Atp_util__Parallel.map";
      "Atp_util.Parallel.map";
      "Atp_engine__Engine.Atp_util.Parallel.map";
    ]
    cands

let test_candidates_bare_name () =
  check
    Alcotest.(list string)
    "bare idents resolve within the unit"
    [ "Atp_core__Alloc.find_fallback" ]
    (Cg.Name.candidates ~modname:"Atp_core__Alloc" "find_fallback")

let test_candidates_nested_module () =
  let cands = Cg.Name.candidates ~modname:"Atp_engine__Engine" "History.push" in
  check Alcotest.bool "nested-module key present" true
    (List.mem "Atp_engine__Engine.History.push" cands)

let test_canon_unmangles () =
  check Alcotest.string "stdlib unit" "Stdlib.Hashtbl.t"
    (Cg.Name.canon "Stdlib__Hashtbl.t");
  check Alcotest.string "project unit" "Atp_util.Parallel.map"
    (Cg.Name.canon "Atp_util__Parallel.map");
  check Alcotest.string "snake_case untouched" "find_fallback"
    (Cg.Name.canon "find_fallback")

let test_resolve_aliases () =
  let aliases = [ ("Obs", "Atp_obs"); ("Json", "Atp_obs.Json") ] in
  check Alcotest.string "head rewrite" "Atp_obs.Scope.counter"
    (Cg.Name.resolve_aliases ~aliases "Obs.Scope.counter");
  check Alcotest.string "no alias, unchanged" "History.push"
    (Cg.Name.resolve_aliases ~aliases "History.push")

let test_is_parallel_primitive () =
  let yes = Cg.Name.is_parallel_primitive in
  check Alcotest.bool "wrapper view" true (yes "Atp_util.Parallel.map");
  check Alcotest.bool "mangled view" true (yes "Atp_util__Parallel.map_results");
  check Alcotest.bool "domain spawn" true (yes "Stdlib.Domain.spawn");
  check Alcotest.bool "ordinary map" false (yes "Stdlib.List.map");
  check Alcotest.bool "suffix is anchored" false (yes "NotParallel.map")

(* ------------------------------------------------------------------ *)
(* Edge resolution                                                     *)
(* ------------------------------------------------------------------ *)

let test_resolve_cross_module () =
  let t =
    graph [ node ~modname:"Atp_util__Parallel" "Atp_util__Parallel.map" ]
  in
  check
    Alcotest.(option string)
    "wrapper-alias reference finds the mangled unit"
    (Some "Atp_util__Parallel.map")
    (Cg.resolve t ~modname:"Atp_engine__Engine" "Atp_util.Parallel.map")

let test_resolve_functor_application () =
  let t = graph [ node ~modname:"M" "M.f" ] in
  check
    Alcotest.(option string)
    "functor application paths stay unknown" None
    (Cg.resolve t ~modname:"M" "Make(X).f")

let test_resolve_unknown_callee () =
  let t = graph [ node ~modname:"M" "M.f" ] in
  check
    Alcotest.(option string)
    "externals stay unknown" None
    (Cg.resolve t ~modname:"M" "Stdlib.List.map")

(* ------------------------------------------------------------------ *)
(* Reachability                                                        *)
(* ------------------------------------------------------------------ *)

let test_reaches_parallel_chain () =
  let t =
    graph
      [
        node ~modname:"M" "M.outer" ~calls:[ call "inner" ];
        node ~modname:"M" "M.inner" ~calls:[ call "Atp_util.Parallel.map" ];
        node ~modname:"M" "M.plain" ~calls:[ call "Stdlib.List.map" ];
      ]
  in
  check Alcotest.bool "transitive forwarder" true
    (Cg.reaches_parallel t "M.outer");
  check Alcotest.bool "non-forwarder" false (Cg.reaches_parallel t "M.plain")

let test_reaches_parallel_cycle () =
  let t =
    graph
      [
        node ~modname:"M" "M.a" ~calls:[ call "b" ];
        node ~modname:"M" "M.b" ~calls:[ call "a" ];
      ]
  in
  check Alcotest.bool "cycle terminates, conservatively false" false
    (Cg.reaches_parallel t "M.a")

let test_alloc_witness_chain () =
  let t =
    graph
      [
        node ~modname:"M" "M.top" ~calls:[ call "mid" ];
        node ~modname:"M" "M.mid" ~calls:[ call "leaf" ];
        node ~modname:"M" "M.leaf" ~allocs:[ alloc "a tuple" ];
      ]
  in
  match Cg.alloc_witness t "M.top" with
  | None -> Alcotest.fail "expected an allocation witness"
  | Some (chain, a) ->
    check
      Alcotest.(list string)
      "chain in call order"
      [ "M.top"; "M.mid"; "M.leaf" ]
      (List.map (fun (n : Cg.node) -> n.Cg.id) chain);
    check Alcotest.string "witness" "a tuple" a.Cg.a_what

let test_alloc_witness_stops_at_hot () =
  let t =
    graph
      [
        node ~modname:"M" "M.top" ~calls:[ call "hot_leaf" ];
        node ~modname:"M" "M.hot_leaf" ~hot:true
          ~allocs:[ alloc "a closure" ];
      ]
  in
  check Alcotest.bool "hot callees enforce their own discipline" true
    (Option.is_none (Cg.alloc_witness t "M.top"))

let test_alloc_witness_skips_unapplied_edges () =
  let t =
    graph
      [
        node ~modname:"M" "M.top" ~calls:[ call ~applied:false "leaf" ];
        node ~modname:"M" "M.leaf" ~allocs:[ alloc "a tuple" ];
      ]
  in
  check Alcotest.bool "bare references contribute no alloc edges" true
    (Option.is_none (Cg.alloc_witness t "M.top"))

let test_alloc_witness_cycle () =
  let t =
    graph
      [
        node ~modname:"M" "M.a" ~calls:[ call "b" ];
        node ~modname:"M" "M.b" ~calls:[ call "a" ];
      ]
  in
  check Alcotest.bool "allocation-free cycle terminates" true
    (Option.is_none (Cg.alloc_witness t "M.a"))

let test_mutable_global_witness () =
  let t =
    graph
      [
        node ~modname:"M" "M.caller" ~calls:[ call "toucher" ];
        node ~modname:"M" "M.toucher"
          ~globals:[ global "memo" "a hash table" ];
      ]
  in
  match Cg.mutable_global_witness t "M.caller" with
  | None -> Alcotest.fail "expected a mutable-global witness"
  | Some (owner, g) ->
    check Alcotest.string "owning node" "M.toucher" owner.Cg.id;
    check Alcotest.string "witness name" "memo" g.Cg.cap_name

let () =
  Alcotest.run "callgraph"
    [
      ( "names",
        [
          Alcotest.test_case "candidates wrapper alias" `Quick
            test_candidates_wrapper_alias;
          Alcotest.test_case "candidates bare name" `Quick
            test_candidates_bare_name;
          Alcotest.test_case "candidates nested module" `Quick
            test_candidates_nested_module;
          Alcotest.test_case "canon unmangles" `Quick test_canon_unmangles;
          Alcotest.test_case "alias rewrite" `Quick test_resolve_aliases;
          Alcotest.test_case "parallel primitives" `Quick
            test_is_parallel_primitive;
        ] );
      ( "resolution",
        [
          Alcotest.test_case "cross-module edge" `Quick
            test_resolve_cross_module;
          Alcotest.test_case "functor application" `Quick
            test_resolve_functor_application;
          Alcotest.test_case "unknown callee" `Quick
            test_resolve_unknown_callee;
        ] );
      ( "reachability",
        [
          Alcotest.test_case "parallel chain" `Quick
            test_reaches_parallel_chain;
          Alcotest.test_case "parallel cycle" `Quick
            test_reaches_parallel_cycle;
          Alcotest.test_case "alloc chain" `Quick test_alloc_witness_chain;
          Alcotest.test_case "alloc stops at hot" `Quick
            test_alloc_witness_stops_at_hot;
          Alcotest.test_case "alloc skips bare refs" `Quick
            test_alloc_witness_skips_unapplied_edges;
          Alcotest.test_case "alloc cycle" `Quick test_alloc_witness_cycle;
          Alcotest.test_case "mutable global witness" `Quick
            test_mutable_global_witness;
        ] );
    ]
