(* Violates domain-safety: work shipped across domains reaches mutable
   state shared with the enclosing scope — a captured ref, and a named
   function that writes a module-level table. *)

let sum_shared xs =
  let total = ref 0 in
  let partials =
    Atp_util.Parallel.map
      (fun x ->
        total := !total + x;
        !total)
      xs
  in
  ignore partials;
  !total

let memo : (string, int) Hashtbl.t = Hashtbl.create 8

let cached_length s =
  match Hashtbl.find_opt memo s with
  | Some n -> n
  | None ->
    let n = String.length s in
    Hashtbl.add memo s n;
    n

let lengths xs = Atp_util.Parallel.map cached_length xs
