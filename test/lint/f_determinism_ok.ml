(* Clean: randomness flows through the seeded Util.Prng. *)

let rng = Atp_util.Prng.create ~seed:42 ()

let roll () = Atp_util.Prng.int rng 6
