val table : (int, string) Hashtbl.t

val add : int -> string -> unit
