(* Violates no-poly-compare: structural (=) and [compare] instantiated
   at a record type carrying a mutable cell. *)

type config = { name : string; cache : int ref }

let same (a : config) (b : config) = a = b

let sort_all (l : config list) = List.sort compare l
