val minmax : int -> int -> int * int

val find_slot : bool -> int -> int option

val push : int -> int list -> int list

val scaled : int list -> int -> int list
