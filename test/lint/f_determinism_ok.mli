val roll : unit -> int
