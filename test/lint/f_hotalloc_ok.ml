(* Clean under hot-path-alloc: packed-int returns, curried parameters,
   module-initialization allocation, untagged code, and the
   [@atplint.allow] escape hatch. *)

(* Module initialization runs once per program, not per call. *)
let[@atplint.hot] defaults = [ 1; 2; 3 ]

let[@atplint.hot] pack hi lo = (hi lsl 16) lor lo

(* A curried-parameter chain is not a per-call closure. *)
let[@atplint.hot] weighted w x y = (w * x) + ((100 - w) * y)

(* Constructor-time allocation, explicitly waived. *)
let[@atplint.hot] [@atplint.allow "hot-path-alloc"] boxed x = Some x

(* Untagged code in an untagged file is out of the rule's reach. *)
let untagged_pair a b = (a, b)
