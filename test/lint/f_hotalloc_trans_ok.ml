(* Clean under hot-path-alloc-transitive: helpers on the hot path are
   allocation-free, and the one allocating callee is justified at its
   hot caller. *)

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let[@atplint.hot] step x = clamp 0 100 (x + 1)

let boxed x = Some x

(* Setup entry point of a hot module: allocation at creation time is
   fine, and says so. *)
let[@atplint.hot] [@atplint.allow "hot-path-alloc-transitive"] sample x =
  boxed x
