(* Violates hot-path-alloc-transitive: the hot entry points stay
   allocation-free themselves but call non-hot helpers that allocate
   per call — directly, and through a deeper chain. *)

let pair a b = (a, b)

let wrap x = Some x

let deep x = wrap (x + 1)

let[@atplint.hot] lookup x = fst (pair x x)

let[@atplint.hot] translate x = deep x
