(* Clean: dotted lowercase metric names throughout. *)

let scope = Atp_obs.Scope.null ()

let hits = Atp_obs.Scope.counter scope "tlb.hits"

let walk_steps =
  Atp_obs.Scope.counter (Atp_obs.Scope.sub scope "walker") "steps"
