val clamp : int -> int -> int -> int

val step : int -> int

val boxed : int -> int option

val sample : int -> int option
