(* Clean: int keys go through the open-addressing Util.Int_table;
   polymorphic Hashtbl is fine for non-int keys. *)

let by_name : (string, int) Hashtbl.t = Hashtbl.create 16

let table : string Atp_util.Int_table.Poly.t =
  Atp_util.Int_table.Poly.create ()

let add k v = Atp_util.Int_table.Poly.set table k v

let find_name n = Hashtbl.find_opt by_name n
