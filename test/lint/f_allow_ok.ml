(* Clean despite two would-be violations: the missing interface is
   excused by a file-wide floating attribute, and the Random use by a
   binding-level attribute.  Exercises both suppression forms. *)

[@@@atplint.allow "mli-coverage"]

let roll () = Stdlib.Random.int 6 [@@atplint.allow "determinism"]
