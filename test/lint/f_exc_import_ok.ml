(* Clean, importer-shaped: the same entry points as
   f_exc_import_bad, but every raise is part of the documented
   contract — the shape Workloads.Import follows. *)

exception Parse_error of { line : int; what : string }

let parse_radix = function
  | "hex" -> 16
  | "dec" -> 10
  | r -> raise (Parse_error { line = 0; what = "unknown radix: " ^ r })

let import_line ?(page_bits = 12) ~line_no line =
  if page_bits < 0 || page_bits > 62 then
    invalid_arg "f_exc_import_ok.import_line";
  match int_of_string_opt ("0x" ^ String.trim line) with
  | Some addr -> addr asr page_bits
  | None -> raise (Parse_error { line = line_no; what = "bad address" })
