(* Violates mli-coverage: a module with no interface file. *)

let answer = 42
