(* Violates exception-contract, importer-shaped: trace-import entry
   points that reject bad configuration via [invalid_arg] and bad
   input via [failwith], with an interface that documents neither. *)

let parse_radix = function
  | "hex" -> 16
  | "dec" -> 10
  | r -> failwith ("unknown radix: " ^ r)

let import_line ?(page_bits = 12) line =
  if page_bits < 0 || page_bits > 62 then
    invalid_arg "f_exc_import_bad.import_line";
  int_of_string ("0x" ^ String.trim line) asr page_bits
