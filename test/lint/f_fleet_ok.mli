val replay_owned_tables : int list list -> int Atp_util.Int_table.Poly.t
