(* Violates obs-naming: metric names must be dotted lowercase
   ([a-z0-9_] segments separated by dots). *)

let scope = Atp_obs.Scope.null ()

let misses = Atp_obs.Scope.counter scope "TLB-Misses"

let depth = Atp_obs.Scope.gauge scope "walk.Depth"
