type config = { name : string; cache : int ref }

val same : config -> config -> bool

val sort_all : config list -> config list
