(* Violates determinism: ambient randomness, wall-clock time, and the
   seed-sensitive polymorphic hash. *)

let roll () = Stdlib.Random.int 6

let stamp () = Sys.time ()

let digest x = Hashtbl.hash x
