val pair : int -> int -> int * int

val wrap : int -> int option

val deep : int -> int option

val lookup : int -> int

val translate : int -> int option
