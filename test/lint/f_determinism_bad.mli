val roll : unit -> int

val stamp : unit -> float

val digest : 'a -> int
