(* Clean under domain-safety, fleet-style: each shard builds its own
   tenant table inside the shipped closure and returns immutable
   per-shard results; the caller merges them and updates any shared
   counters only after Atp_util.Parallel.map has joined. *)

let replay_owned_tables shard_chunks =
  let per_shard =
    Atp_util.Parallel.map
      (fun chunk ->
        let tenant_accesses : int Atp_util.Int_table.Poly.t =
          Atp_util.Int_table.Poly.create ()
        in
        List.iter
          (fun tenant ->
            let seen =
              Atp_util.Int_table.Poly.find_or tenant_accesses tenant 0
            in
            Atp_util.Int_table.Poly.set tenant_accesses tenant (seen + 1))
          chunk;
        Atp_util.Int_table.Poly.fold
          (fun tenant n acc -> (tenant, n) :: acc)
          tenant_accesses [])
      shard_chunks
  in
  (* Caller-side merge: shared mutable state is touched only here,
     strictly after the parallel section has returned. *)
  let merged : int Atp_util.Int_table.Poly.t =
    Atp_util.Int_table.Poly.create ()
  in
  List.iter
    (List.iter (fun (tenant, n) ->
         let seen = Atp_util.Int_table.Poly.find_or merged tenant 0 in
         Atp_util.Int_table.Poly.set merged tenant (seen + n)))
    per_shard;
  merged
