val sum_owned : int list list -> int list

val count_atomic : int list -> int list

val read_only_lookup : string -> int

val lookups : string list -> int list
