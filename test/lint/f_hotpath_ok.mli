val by_name : (string, int) Hashtbl.t

val table : string Atp_util.Int_table.Poly.t

val add : int -> string -> unit

val find_name : string -> int option
