val replay_shared_table : int list -> int

val record_departure : int -> int

val departures : int list -> int list
