val checked_div : int -> int -> int
(** Integer division that rejects a zero divisor. *)
