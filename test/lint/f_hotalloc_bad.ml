(* Violates hot-path-alloc: per-call tuple/option/list/closure
   allocation inside function bodies of a hot-tagged file. *)

[@@@atplint.hot]

let minmax a b = if a < b then (a, b) else (b, a)

let find_slot free slot = if free then Some slot else None

let push x xs = x :: xs

let scaled xs k = List.map (fun x -> x * k) xs
