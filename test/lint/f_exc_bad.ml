(* Violates exception-contract: an exported function that can raise via
   [failwith], with no @raise tag on its interface documentation. *)

let checked_div a b = if b = 0 then failwith "division by zero" else a / b
