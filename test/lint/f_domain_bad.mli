val sum_shared : int list -> int

val cached_length : string -> int

val lengths : string list -> int list
