(* The real-trace ingestion suite.

   Three families of guarantees:

   - fuzzing: random byte- and line-level mutations of valid hex /
     lackey / CSV inputs (and of packed ATPS files) must produce
     either a successful import or a typed Trace.Parse_error — never
     any other exception, a hang, or, for unmutated inputs, a wrong
     reference count;

   - differential replay: for every committed corpus file under
     test/traces, import -> ATPS -> replay must be byte-identical (cost
     report and obs snapshot) to replaying an independent in-memory
     reference decode of the same file, across lru/fifo/2q, shard
     counts 1 and ATP_SHARDS, and both the generic and fused engine
     paths;

   - streaming: importing a ~1M-reference trace must keep peak heap
     growth O(chunk), and the format sniffer must classify hex address
     traces as such instead of misreading them as decimal text.

   OCaml has no OCAMLRUNPARAM heap cap, so the space budget is
   enforced with Gc.top_heap_words deltas and a live-words alarm
   instead: both stay orders of magnitude under what materializing
   the trace would cost. *)

open Atp_util
open Atp_core
open Atp_paging
open Atp_workloads
module Obs = Atp_obs
module Engine = Atp_engine.Engine

let check = Alcotest.check

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let max_shards =
  match Option.bind (Sys.getenv_opt "ATP_SHARDS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | Some _ | None -> 4

let with_temp f =
  let path = Filename.temp_file "atp_import" ".tmp" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Corpus files live next to this test.  Under `dune runtest` the cwd
   is _build/default/test and the dune deps glob puts them at
   traces/...; under `dune exec` from the project root they are at
   test/traces/... *)
let corpus_path name =
  List.find_opt Sys.file_exists
    [ "traces/" ^ name; "test/traces/" ^ name ]
  |> function
  | Some p -> p
  | None -> Alcotest.fail ("corpus file not found: " ^ name)

(* ------------------------------------------------------------------ *)
(* The corpus and its independent reference decoders                   *)
(* ------------------------------------------------------------------ *)

(* Reference decoders deliberately share no code with Import: they
   lean on int_of_string with an "0x" prefix and on permissive string
   splitting, so a bug in the production parser cannot hide in its
   mirror. *)

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> not (String.equal t ""))

let content_lines text =
  String.split_on_char '\n' text
  |> List.map String.trim
  |> List.filter (fun l -> not (String.equal l "" || l.[0] = '#'))

let ref_hex text =
  List.map
    (fun l ->
      match split_ws l with
      | tok :: _ ->
        let tok =
          if String.length tok > 1 && tok.[0] = '0' && (tok.[1] = 'x' || tok.[1] = 'X')
          then tok
          else "0x" ^ tok
        in
        int_of_string tok
      | [] -> assert false)
    (content_lines text)

let ref_lackey ~drop_instr text =
  List.filter_map
    (fun l ->
      if String.length l >= 2 && String.sub l 0 2 = "==" then None
      else if String.length l >= 2 && String.sub l 0 2 = "--" then None
      else
        match split_ws l with
        | kind :: rest :: _ ->
          let addr =
            match String.index_opt rest ',' with
            | Some i -> String.sub rest 0 i
            | None -> rest
          in
          if String.equal kind "I" && drop_instr then None
          else Some (int_of_string ("0x" ^ addr))
        | _ -> None)
    (content_lines text)

let ref_csv ~column ~hex ~skip_header text =
  let lines = String.split_on_char '\n' text in
  let lines = if skip_header then List.tl lines else lines in
  List.filter_map
    (fun l ->
      let l = String.trim l in
      if String.equal l "" || l.[0] = '#' then None
      else
        let f = String.trim (List.nth (String.split_on_char ',' l) (column - 1)) in
        Some (int_of_string (if hex then "0x" ^ f else f)))
    lines

let post ~page_bits ~dedup ~limit addrs =
  let vpns = List.map (fun a -> a asr page_bits) addrs in
  let vpns =
    if not dedup then vpns
    else
      List.rev
        (List.fold_left
           (fun acc v ->
             match acc with w :: _ when w = v -> acc | _ -> v :: acc)
           [] vpns)
  in
  let vpns =
    match limit with
    | None -> vpns
    | Some l -> List.filteri (fun i _ -> i < l) vpns
  in
  Array.of_list vpns

(* One row per corpus file: path, import config/format (mirroring the
   golden dune rules), and the independent reference decode. *)
let corpus =
  [
    ( "matmul.tr",
      Import.Hex,
      Import.default,
      fun text -> post ~page_bits:12 ~dedup:false ~limit:None (ref_hex text) );
    ( "stride_rw.tr",
      Import.Hex,
      Import.default,
      fun text -> post ~page_bits:12 ~dedup:false ~limit:None (ref_hex text) );
    ( "hashjoin.lackey",
      Import.Lackey,
      { Import.default with drop_instr = true },
      fun text ->
        post ~page_bits:12 ~dedup:false ~limit:None
          (ref_lackey ~drop_instr:true text) );
    ( "chase.lackey",
      Import.Lackey,
      { Import.default with limit = Some 100 },
      fun text ->
        post ~page_bits:12 ~dedup:false ~limit:(Some 100)
          (ref_lackey ~drop_instr:false text) );
    ( "sensor.csv",
      Import.Csv,
      {
        Import.default with
        csv = { Import.column = 2; radix = Import.Hexadecimal; skip_header = true };
      },
      fun text ->
        post ~page_bits:12 ~dedup:false ~limit:None
          (ref_csv ~column:2 ~hex:true ~skip_header:true text) );
    ( "decimal.csv",
      Import.Csv,
      {
        Import.default with
        dedup_consecutive = true;
        csv = { Import.column = 1; radix = Import.Decimal; skip_header = false };
      },
      fun text ->
        post ~page_bits:12 ~dedup:true ~limit:None
          (ref_csv ~column:1 ~hex:false ~skip_header:false text) );
  ]

let test_corpus_decode () =
  List.iter
    (fun (name, format, config, reference) ->
      let path = corpus_path name in
      let expect = reference (read_file path) in
      with_temp (fun dst ->
          let stats = Import.import_file ~config ~format ~src:path ~dst () in
          let got = Trace.Stream.to_array dst in
          check
            (Alcotest.array Alcotest.int)
            (path ^ ": import = reference decode")
            expect got;
          check Alcotest.int
            (path ^ ": emitted count")
            (Array.length expect) stats.Import.emitted;
          check Alcotest.bool
            (path ^ ": corpus file is non-trivial")
            true
            (Array.length expect > 50)))
    corpus

(* ------------------------------------------------------------------ *)
(* Differential replay: imported file vs reference decode              *)
(* ------------------------------------------------------------------ *)

let params = Params.derive ~p:2048 ~w:64 ()

let policies = [ "lru"; "fifo"; "2q" ]

let make_sim ~policy () =
  let p = Registry.find_exn policy in
  let x = Policy.instantiate p ~rng:(Prng.create ~seed:11 ()) ~capacity:8 () in
  let y = Policy.instantiate p ~rng:(Prng.create ~seed:13 ()) ~capacity:16 () in
  Simulation.create ~seed:7 ~params ~x ~y ()

let make_fused ~policy () =
  Sim_fused.for_names ~seed:7 ~params ~x_name:policy ~x_capacity:8
    ~x_rng:(Prng.create ~seed:11 ())
    ~y_name:policy ~y_capacity:16
    ~y_rng:(Prng.create ~seed:13 ())
    ()

let totals_str t = Format.asprintf "%a" Engine.pp_totals t

(* Byte-identical: the rendered cost report strings and the obs
   snapshot strings must match, not just the numeric fields. *)
let check_same_replay label (t_file, obs_file) (t_ref, obs_ref) =
  check Alcotest.string (label ^ ": cost report") (totals_str t_ref)
    (totals_str t_file);
  check (Alcotest.float 0.) (label ^ ": cost")
    (Engine.cost ~epsilon:0.01 t_ref)
    (Engine.cost ~epsilon:0.01 t_file);
  check Alcotest.string (label ^ ": obs snapshot") obs_ref obs_file

let engine_config ~shards =
  { Engine.shards; epoch_len = 32; warmup = 32; domains = None }

let test_corpus_differential () =
  List.iter
    (fun (name, format, config, reference) ->
      let path = corpus_path name in
      let expect = reference (read_file path) in
      with_temp (fun dst ->
          ignore (Import.import_file ~config ~format ~src:path ~dst ());
          List.iter
            (fun policy ->
              List.iter
                (fun shards ->
                  let label =
                    Printf.sprintf "%s/%s/shards=%d" path policy shards
                  in
                  let run source =
                    let reg = Obs.Registry.create () in
                    let t =
                      Engine.replay
                        ~obs:(Obs.Scope.v reg)
                        ~config:(engine_config ~shards)
                        ~make_sim:(make_sim ~policy) source
                    in
                    (t, Obs.Registry.snapshot_string reg)
                  in
                  check_same_replay (label ^ " generic")
                    (run (Trace.Stream.source dst))
                    (run (Engine.source_of_array expect));
                  let run_fused bs =
                    let reg = Obs.Registry.create () in
                    let t =
                      Engine.replay_fused
                        ~obs:(Obs.Scope.v reg)
                        ~config:(engine_config ~shards)
                        ~make_fused:(make_fused ~policy) bs
                    in
                    (t, Obs.Registry.snapshot_string reg)
                  in
                  check_same_replay (label ^ " fused")
                    (run_fused (Engine.block_source_of_stream dst))
                    (run_fused (Engine.block_source_of_array expect));
                  (* and fused = generic on the same imported file *)
                  check_same_replay (label ^ " fused=generic")
                    (run_fused (Engine.block_source_of_stream dst))
                    (run (Trace.Stream.source dst)))
                [ 1; max_shards ])
            policies;
          (* the fully fused streaming path once per file *)
          let seq_file =
            Engine.replay_stream_fused ~make_fused:(make_fused ~policy:"lru") dst
          in
          let seq_ref =
            Engine.replay_sequential_fused
              ~make_fused:(make_fused ~policy:"lru")
              (Engine.block_source_of_array expect)
          in
          check Alcotest.string (path ^ ": stream-fused sequential")
            (totals_str seq_ref) (totals_str seq_file)))
    corpus

(* ------------------------------------------------------------------ *)
(* Importer semantics                                                  *)
(* ------------------------------------------------------------------ *)

let import_string ?config ~format s =
  with_temp (fun path ->
      write_file path s;
      let refs = ref [] in
      let stats = Import.import ?config ~format path (fun v -> refs := v :: !refs) in
      (stats, List.rev !refs))

let parse_error_of ?config ~format s =
  with_temp (fun path ->
      write_file path s;
      match Import.import ?config ~format path (fun _ -> ()) with
      | _ -> None
      | exception Trace.Parse_error { what; _ } -> Some what)

let test_importer_semantics () =
  (* page-bits shift, 0x tolerance, comment and column skipping *)
  let stats, refs =
    import_string ~format:Import.Hex
      "# c\n1000\n0x1fff\n2000 R 8\n\n2abc W 4\n"
  in
  check (Alcotest.list Alcotest.int) "hex vpns" [ 1; 1; 2; 2 ] refs;
  check Alcotest.int "hex parsed" 4 stats.Import.parsed;
  (* dedup + limit *)
  let _, refs =
    import_string
      ~config:{ Import.default with dedup_consecutive = true; limit = Some 2 }
      ~format:Import.Hex "1000\n1fff\n2000\n3000\n"
  in
  check (Alcotest.list Alcotest.int) "dedup+limit" [ 1; 2 ] refs;
  (* page_bits other than 12 *)
  let _, refs =
    import_string
      ~config:{ Import.default with page_bits = 16 }
      ~format:Import.Hex "20000\n"
  in
  check (Alcotest.list Alcotest.int) "page_bits=16" [ 2 ] refs;
  (* lackey record kinds and instruction filtering *)
  let _, refs =
    import_string ~format:Import.Lackey
      "==1== banner\nI  1000,4\n L 2000,8\n S 3000,8\nM 4000,4\n==1==\n"
  in
  check (Alcotest.list Alcotest.int) "lackey all" [ 1; 2; 3; 4 ] refs;
  let _, refs =
    import_string
      ~config:{ Import.default with drop_instr = true }
      ~format:Import.Lackey "I  1000,4\n L 2000,8\n"
  in
  check (Alcotest.list Alcotest.int) "lackey --no-instr" [ 2 ] refs;
  (* CSV column / radix / header *)
  let _, refs =
    import_string
      ~config:
        {
          Import.default with
          csv = { Import.column = 2; radix = Import.Decimal; skip_header = true };
        }
      ~format:Import.Csv "a,b\nx,8192,y\nz, 12288 ,w\n"
  in
  check (Alcotest.list Alcotest.int) "csv dec col2" [ 2; 3 ] refs;
  (* CRLF and BOM are tolerated *)
  let _, refs =
    import_string ~format:Import.Hex "\xef\xbb\xbf1000\r\n2000\r\n"
  in
  check (Alcotest.list Alcotest.int) "bom+crlf" [ 1; 2 ] refs

let contains ~sub s =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_importer_errors () =
  let has_line3 = function
    | Some what -> contains ~sub:"line 3" what
    | None -> false
  in
  check Alcotest.bool "hex error carries line number" true
    (has_line3 (parse_error_of ~format:Import.Hex "1000\n2000\nzz zz\n"));
  check Alcotest.bool "lackey bad record" true
    (has_line3
       (parse_error_of ~format:Import.Lackey " L 1000,8\n S 2000,8\nQ 3,4\n"));
  check Alcotest.bool "lackey bad size" true
    (Option.is_some (parse_error_of ~format:Import.Lackey " L 1000,banana\n"));
  check Alcotest.bool "csv missing column" true
    (Option.is_some
       (parse_error_of
          ~config:
            {
              Import.default with
              csv =
                { Import.column = 3; radix = Import.Hexadecimal; skip_header = false };
            }
          ~format:Import.Csv "1000,2000\n"));
  check Alcotest.bool "decimal radix rejects hex letters" true
    (Option.is_some
       (parse_error_of
          ~config:
            {
              Import.default with
              csv =
                { Import.column = 1; radix = Import.Decimal; skip_header = false };
            }
          ~format:Import.Csv "1abc\n"));
  check Alcotest.bool "overflowing address" true
    (Option.is_some
       (parse_error_of ~format:Import.Hex "fffffffffffffffff\n"));
  check Alcotest.bool "overlong line" true
    (Option.is_some
       (parse_error_of ~format:Import.Hex
          (String.make (Import.max_line_bytes + 8) 'a')));
  (* bad config is Invalid_argument, not a parse error *)
  check Alcotest.bool "bad page_bits" true
    (with_temp (fun path ->
         write_file path "1000\n";
         match
           Import.import
             ~config:{ Import.default with page_bits = 63 }
             ~format:Import.Hex path
             (fun _ -> ())
         with
         | exception Invalid_argument _ -> true
         | _ -> false))

let test_import_file_cleanup () =
  (* a failed import must not leave a half-written ATPS file behind *)
  with_temp (fun src ->
      write_file src "1000\nzz zz\n";
      let dst = Filename.temp_file "atp_import" ".atps" in
      Sys.remove dst;
      (match Import.import_file ~format:Import.Hex ~src ~dst () with
      | _ -> Alcotest.fail "expected Parse_error"
      | exception Trace.Parse_error _ -> ());
      check Alcotest.bool "partial dst removed" false (Sys.file_exists dst))

(* ------------------------------------------------------------------ *)
(* Sniffing                                                            *)
(* ------------------------------------------------------------------ *)

let format_testable =
  Alcotest.testable Trace.pp_format (fun a b ->
      match (a, b) with
      | Trace.Text, Trace.Text
      | Trace.Binary, Trace.Binary
      | Trace.Streamed, Trace.Streamed
      | Trace.Hex, Trace.Hex ->
        true
      | _ -> false)

let test_sniffing () =
  let fmt s =
    with_temp (fun path ->
        write_file path s;
        Trace.format_of_file path)
  in
  (* the regression this PR fixes: hex content must not sniff as text *)
  check format_testable ".tr hex file" Trace.Hex (fmt "0041f7a0\n0041f7a4\n");
  check format_testable "0x prefix" Trace.Hex (fmt "0x12345678\n");
  check format_testable "R/W columns" Trace.Hex (fmt "123 R 4\n456 W 8\n");
  check format_testable "decimal stays text" Trace.Text (fmt "12\n34\n56\n");
  check format_testable "junk stays text" Trace.Text (fmt "12\nnope\n");
  check format_testable "comments skipped" Trace.Hex (fmt "# hdr\ncafebabe\n");
  (* Trace.load refuses hex with a pointer at the importer *)
  check Alcotest.bool "load refuses hex" true
    (with_temp (fun path ->
         write_file path "0041f7a0\ndeadbeef\n";
         match Trace.load path with
         | exception Trace.Parse_error { what; _ } ->
           contains ~sub:"trace import" what
         | _ -> false));
  (* Import.sniff refines the external formats *)
  let sniff s =
    with_temp (fun path ->
        write_file path s;
        Import.sniff path)
  in
  check Alcotest.bool "sniff lackey" true
    (match sniff "==1== x\nI  1000,4\n L 2000,8\n" with
    | `Import Import.Lackey -> true
    | _ -> false);
  check Alcotest.bool "sniff csv" true
    (match sniff "1000,R\n2000,W\n" with
    | `Import Import.Csv -> true
    | _ -> false);
  check Alcotest.bool "sniff hex" true
    (match sniff "0041f7a0\n" with Import.(`Import Hex) -> true | _ -> false);
  check Alcotest.bool "sniff native streamed" true
    (with_temp (fun path ->
         Trace.Stream.pack_array path [| 1; 2; 3 |];
         match Import.sniff path with
         | `Native Trace.Streamed -> true
         | _ -> false));
  (* corpus files sniff to their import formats *)
  List.iter
    (fun (name, format, _, _) ->
      check Alcotest.bool
        (name ^ " sniffs correctly")
        true
        (match (Import.sniff (corpus_path name), format) with
        | `Import Import.Hex, Import.Hex
        | `Import Import.Lackey, Import.Lackey
        | `Import Import.Csv, Import.Csv ->
          true
        | _ -> false))
    corpus

(* ------------------------------------------------------------------ *)
(* Fuzzing: mutated inputs never crash, hang, or miscount              *)
(* ------------------------------------------------------------------ *)

(* A tiny deterministic byte source for mutation payloads (the qcheck
   generator supplies the seeds, so shrinking stays meaningful). *)
let garbage seed len =
  String.init len (fun i ->
      Char.chr ((((seed + i) * 1103515245) + 12345) lsr 8 land 0xFF))

let clamp lo hi v = max lo (min hi v)

let mutate ~mut ~a ~b base =
  let n = String.length base in
  match mut mod 10 with
  | 0 -> ""
  | 1 -> if n = 0 then base else String.sub base 0 (a mod n) (* truncate *)
  | 2 ->
    if n = 0 then garbage a 8
    else
      let i = a mod n in
      String.sub base 0 i ^ garbage b (1 + (b mod 24)) ^ String.sub base i (n - i)
  | 3 ->
    if n = 0 then base
    else
      let i = a mod n in
      let len = clamp 0 (n - i) (b mod 32) in
      String.sub base 0 i ^ String.sub base (i + len) (n - i - len)
  | 4 ->
    if n = 0 then base
    else
      let i = a mod n in
      String.sub base 0 i
      ^ String.make 1 (Char.chr (b land 0xFF))
      ^ String.sub base (i + 1) (n - i - 1)
  | 5 ->
    (* CRLF-ify *)
    String.concat "\r\n" (String.split_on_char '\n' base)
  | 6 -> "\xef\xbb\xbf" ^ base
  | 7 ->
    (* splice in an overlong line *)
    String.sub base 0 (if n = 0 then 0 else a mod n)
    ^ "\n"
    ^ String.make (Import.max_line_bytes + 2) 'a'
    ^ "\n" ^ base
  | 8 ->
    if n = 0 then base
    else
      let i = a mod n in
      let len = clamp 0 (n - i) (b mod 64) in
      base ^ String.sub base i len (* duplicate a span *)
  | _ -> base (* identity: must import with the expected count *)

let render_hex addrs =
  String.concat ""
    (List.mapi
       (fun i a ->
         match i mod 4 with
         | 0 -> Printf.sprintf "%x\n" a
         | 1 -> Printf.sprintf "0x%x R 8\n" a
         | 2 -> Printf.sprintf "%08x W 4\n" a
         | _ -> Printf.sprintf "# note\n%x\n" a)
       addrs)

let render_lackey addrs =
  "==99== Lackey\n"
  ^ String.concat ""
      (List.mapi
         (fun i a ->
           match i mod 4 with
           | 0 -> Printf.sprintf "I  %x,4\n" a
           | 1 -> Printf.sprintf " L %x,8\n" a
           | 2 -> Printf.sprintf " S %x,8\n" a
           | _ -> Printf.sprintf " M %x,4\n" a)
         addrs)
  ^ "==99==\n"

let render_csv addrs =
  "ts,addr,op\n"
  ^ String.concat ""
      (List.mapi (fun i a -> Printf.sprintf "%d,%x,%s\n" i a
                    (if i mod 2 = 0 then "rd" else "wr"))
         addrs)

let csv_fuzz_config =
  {
    Import.default with
    csv = { Import.column = 2; radix = Import.Hexadecimal; skip_header = true };
  }

(* Fuzz one importer: any mutation either imports or raises
   Trace.Parse_error; the identity mutation must import exactly
   [List.length addrs] references. *)
let fuzz_importer ~name ~format ~config render =
  QCheck.Test.make ~name ~count:250
    QCheck.(
      quad
        (list_of_size Gen.(int_range 0 40) (int_bound 0xFFFFFF))
        small_nat small_nat small_nat)
    (fun (addrs, mut, a, b) ->
      let base = render addrs in
      let data = mutate ~mut ~a ~b base in
      with_temp (fun path ->
          write_file path data;
          match Import.import ~config ~format path (fun _ -> ()) with
          | stats ->
            if mut mod 10 = 9 then stats.Import.emitted = List.length addrs
            else true
          | exception Trace.Parse_error _ -> true))

let fuzz_hex =
  fuzz_importer ~name:"fuzz: hex importer" ~format:Import.Hex
    ~config:Import.default render_hex

let fuzz_lackey =
  fuzz_importer ~name:"fuzz: lackey importer" ~format:Import.Lackey
    ~config:Import.default render_lackey

let fuzz_csv =
  fuzz_importer ~name:"fuzz: csv importer" ~format:Import.Csv
    ~config:csv_fuzz_config render_csv

(* The same battery pointed at the ATPS reader: mutated packed files
   must decode fully or die with Parse_error — and a corrupt header
   must never provoke an allocation larger than the file itself. *)
let fuzz_atps =
  QCheck.Test.make ~name:"fuzz: ATPS reader" ~count:250
    QCheck.(
      quad
        (list_of_size Gen.(int_range 0 60) (int_bound 1_000_000))
        small_nat small_nat small_nat)
    (fun (pages, mut, a, b) ->
      let trace = Array.of_list pages in
      with_temp (fun packed ->
          Trace.Stream.pack_array ~chunk_size:16 packed trace;
          let data = mutate ~mut ~a ~b (read_file packed) in
          with_temp (fun path ->
              write_file path data;
              match Trace.Stream.to_array path with
              | back ->
                if mut mod 10 = 9 then Array.length back = Array.length trace
                else true
              | exception Trace.Parse_error _ -> true)))

(* And at the ATPT binary reader, whose declared count is now checked
   against the file size. *)
let fuzz_atpt =
  QCheck.Test.make ~name:"fuzz: ATPT reader" ~count:250
    QCheck.(
      quad
        (list_of_size Gen.(int_range 0 60) (int_bound 1_000_000))
        small_nat small_nat small_nat)
    (fun (pages, mut, a, b) ->
      let trace = Array.of_list pages in
      with_temp (fun packed ->
          Trace.save_binary packed trace;
          let data = mutate ~mut ~a ~b (read_file packed) in
          with_temp (fun path ->
              write_file path data;
              match Trace.load path with
              | back ->
                if mut mod 10 = 9 then Array.length back = Array.length trace
                else true
              | exception Trace.Parse_error _ -> true)))

(* ------------------------------------------------------------------ *)
(* Streaming proof: O(chunk) peak memory on a ~1M-ref import           *)
(* ------------------------------------------------------------------ *)

let test_streaming_budget () =
  with_temp (fun src ->
      let n = 1_000_000 in
      let oc = open_out_bin src in
      let state = ref 123456789 in
      for _ = 1 to n do
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        Printf.fprintf oc "%x R 8\n" !state
      done;
      close_out oc;
      with_temp (fun dst ->
          Gc.compact ();
          let top0 = (Gc.stat ()).Gc.top_heap_words in
          let peak_live = ref 0 in
          let alarm =
            Gc.create_alarm (fun () ->
                let live = (Gc.quick_stat ()).Gc.heap_words in
                if live > !peak_live then peak_live := live)
          in
          let stats =
            Fun.protect
              ~finally:(fun () -> Gc.delete_alarm alarm)
              (fun () ->
                Import.import_file ~chunk_size:4096 ~format:Import.Hex ~src ~dst
                  ())
          in
          let top1 = (Gc.stat ()).Gc.top_heap_words in
          check Alcotest.int "all refs imported" n stats.Import.emitted;
          (* Materializing would cost >= n words (8 MB); the streaming
             path's heap growth must stay two orders of magnitude
             below that — O(chunk + line), not O(trace). *)
          let budget = 500_000 in
          let grew = top1 - top0 in
          check Alcotest.bool
            (Printf.sprintf "heap growth %d words within budget %d" grew budget)
            true (grew <= budget);
          check Alcotest.bool
            (Printf.sprintf "peak live %d words within budget" !peak_live)
            true
            (!peak_live = 0 (* no major collection ran: nothing accumulated *)
            || !peak_live - top0 <= budget);
          (* and the emitted stream is intact *)
          let h = Trace.Stream.with_reader dst Trace.Stream.header in
          check Alcotest.int "stream length" n h.Trace.Stream.length))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "import"
    [
      ( "corpus",
        [
          Alcotest.test_case "import = independent reference decode" `Quick
            test_corpus_decode;
          Alcotest.test_case "differential replay (generic+fused, 1/N shards)"
            `Quick test_corpus_differential;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "importer semantics" `Quick test_importer_semantics;
          Alcotest.test_case "typed errors with line numbers" `Quick
            test_importer_errors;
          Alcotest.test_case "failed import removes partial output" `Quick
            test_import_file_cleanup;
          Alcotest.test_case "format sniffing" `Quick test_sniffing;
        ] );
      ( "fuzz",
        qsuite [ fuzz_hex; fuzz_lackey; fuzz_csv; fuzz_atps; fuzz_atpt ] );
      ( "streaming",
        [
          Alcotest.test_case "1M-ref import stays O(chunk)" `Quick
            test_streaming_budget;
        ] );
    ]
