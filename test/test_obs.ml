(* The observability layer: registry/counter/gauge/histogram/trace
   units, JSON rendering, and — the load-bearing part — consistency
   between the exported obs counters and each component's own stats
   record on the same run. *)

open Atp_util
module Obs = Atp_obs
module Tlb = Atp_tlb.Tlb
module Hierarchy = Atp_tlb.Hierarchy
module Machine = Atp_memsim.Machine
module Page_table = Atp_memsim.Page_table
module Walker = Atp_memsim.Walker
module Params = Atp_core.Params
module Simulation = Atp_core.Simulation
open Atp_paging

let check = Alcotest.check

let counter_value reg name =
  match Obs.Registry.find_counter reg name with
  | Some c -> Obs.Counter.value c
  | None -> Alcotest.failf "counter %s not registered" name

(* --- Json ----------------------------------------------------------- *)

let test_json_render () =
  let open Obs.Json in
  check Alcotest.string "obj"
    {|{"a":1,"b":[true,null],"c":"x\"y\n"}|}
    (to_string
       (Obj
          [
            ("a", Int 1);
            ("b", List [ Bool true; Null ]);
            ("c", String "x\"y\n");
          ]));
  check Alcotest.string "fractional float" "1.5" (to_string (Float 1.5));
  check Alcotest.string "integral float gets a point" "2.0"
    (to_string (Float 2.0));
  check Alcotest.string "nan is null" "null" (to_string (Float Float.nan));
  check Alcotest.string "inf is null" "null" (to_string (Float Float.infinity))

(* --- Registry ------------------------------------------------------- *)

let test_registry_interning () =
  let reg = Obs.Registry.create () in
  let a = Obs.Registry.counter reg "x" in
  let b = Obs.Registry.counter reg "x" in
  Obs.Counter.incr a;
  Obs.Counter.add b 2;
  check Alcotest.int "same counter through both handles" 3
    (Obs.Counter.value a);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "one binding" [ ("x", 3) ] (Obs.Registry.counters reg)

let test_registry_sorted_and_reset () =
  let reg = Obs.Registry.create () in
  Obs.Counter.add (Obs.Registry.counter reg "zeta") 9;
  Obs.Counter.add (Obs.Registry.counter reg "alpha") 4;
  Obs.Gauge.set (Obs.Registry.gauge reg "g") 2.5;
  Obs.Histogram.observe (Obs.Registry.histogram reg "h") 3;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "sorted by name"
    [ ("alpha", 4); ("zeta", 9) ]
    (Obs.Registry.counters reg);
  Obs.Registry.reset reg;
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "counters zeroed"
    [ ("alpha", 0); ("zeta", 0) ]
    (Obs.Registry.counters reg);
  check (Alcotest.float 0.0) "gauge zeroed" 0.0
    (Obs.Gauge.value (Obs.Registry.gauge reg "g"));
  check Alcotest.int "histogram zeroed" 0
    (Obs.Histogram.count (Obs.Registry.histogram reg "h"))

let test_registry_snapshot_shape () =
  let reg = Obs.Registry.create () in
  Obs.Counter.add (Obs.Registry.counter reg "b") 2;
  Obs.Counter.add (Obs.Registry.counter reg "a") 1;
  check Alcotest.string "deterministic snapshot"
    {|{"counters":{"a":1,"b":2},"gauges":{},"histograms":{},"trace":{"enabled":false,"emitted":0,"dropped":0}}|}
    (Obs.Registry.snapshot_string reg)

(* --- Scope ---------------------------------------------------------- *)

let test_scope_prefixes () =
  let reg = Obs.Registry.create () in
  let machine = Obs.Scope.v ~prefix:"machine" reg in
  let tlb = Obs.Scope.sub machine "tlb" in
  Obs.Counter.incr (Obs.Scope.counter tlb "lookups");
  Obs.Counter.incr (Obs.Scope.counter machine "ios");
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "dotted names"
    [ ("machine.ios", 1); ("machine.tlb.lookups", 1) ]
    (Obs.Registry.counters reg);
  check Alcotest.string "prefix accessor" "machine.tlb" (Obs.Scope.prefix tlb)

let test_scope_null_is_isolated () =
  let s = Obs.Scope.null () in
  Obs.Counter.incr (Obs.Scope.counter s "x");
  (* No way to reach this registry from outside; just confirm it
     counts and doesn't raise. *)
  check Alcotest.int "null scope still counts" 1
    (Obs.Counter.value (Obs.Scope.counter s "x"))

(* --- Trace ---------------------------------------------------------- *)

let test_trace_ring_keeps_tail () =
  let tr = Obs.Trace.create ~capacity:4 in
  for i = 0 to 9 do
    Obs.Trace.emit tr ~detail:(i * 10) Obs.Event.Io i
  done;
  check Alcotest.int "emitted" 10 (Obs.Trace.emitted tr);
  check Alcotest.int "dropped" 6 (Obs.Trace.dropped tr);
  let events = Obs.Trace.events tr in
  check
    (Alcotest.list Alcotest.int)
    "most recent subjects, oldest first" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.Obs.Event.subject) events);
  check
    (Alcotest.list Alcotest.int)
    "seq preserved" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.Obs.Event.seq) events)

let test_trace_disabled_is_noop () =
  let tr = Obs.Trace.disabled in
  Obs.Trace.emit tr Obs.Event.Tlb_miss 1;
  check Alcotest.bool "disabled" false (Obs.Trace.enabled tr);
  check Alcotest.int "nothing recorded" 0 (Obs.Trace.emitted tr)

let test_trace_jsonl () =
  let tr = Obs.Trace.create ~capacity:8 in
  Obs.Trace.emit tr ~detail:2 Obs.Event.Tlb_miss 7;
  Obs.Trace.emit tr Obs.Event.Decode_miss 9;
  let buf = Buffer.create 64 in
  Obs.Trace.to_jsonl buf tr;
  check Alcotest.string "jsonl lines"
    ({|{"seq":0,"kind":"tlb_miss","subject":7,"detail":2}|} ^ "\n"
   ^ {|{"seq":1,"kind":"decode_miss","subject":9,"detail":0}|} ^ "\n")
    (Buffer.contents buf)

let test_trace_rejects_bad_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Trace.create: capacity must be positive") (fun () ->
      ignore (Obs.Trace.create ~capacity:0))

(* --- Histogram and Stats edge cases --------------------------------- *)

let test_histogram_empty () =
  let h = Obs.Histogram.create "h" in
  check Alcotest.int "count" 0 (Obs.Histogram.count h);
  check (Alcotest.float 0.0) "mean" 0.0 (Obs.Histogram.mean h);
  check Alcotest.int "percentile of empty" 0 (Obs.Histogram.percentile h 0.99);
  check Alcotest.string "min/max null when empty"
    {|{"count":0,"mean":0.0,"min":null,"max":null,"p50":0,"p99":0}|}
    (Obs.Json.to_string (Obs.Histogram.to_json h))

let test_histogram_single_sample () =
  let h = Obs.Histogram.create "h" in
  Obs.Histogram.observe h 5;
  check Alcotest.int "count" 1 (Obs.Histogram.count h);
  check (Alcotest.float 1e-9) "mean" 5.0 (Obs.Histogram.mean h);
  (* 5 lands in bucket [4,8): the quantile upper bound is 7. *)
  check Alcotest.int "p50 bucket ceiling" 7 (Obs.Histogram.percentile h 0.5);
  check (Alcotest.float 0.0) "variance of single" 0.0
    (Stats.Summary.variance (Obs.Histogram.summary h))

let test_histogram_rejects_negative () =
  let h = Obs.Histogram.create "h" in
  Alcotest.check_raises "negative"
    (Invalid_argument "Log_histogram.add: negative value") (fun () ->
      Obs.Histogram.observe h (-1))

let test_summary_rejects_nan () =
  let s = Stats.Summary.create () in
  Stats.Summary.add s 1.0;
  Alcotest.check_raises "NaN" (Invalid_argument "Summary.add: NaN observation")
    (fun () -> Stats.Summary.add s Float.nan);
  check Alcotest.int "count unchanged after rejection" 1
    (Stats.Summary.count s)

let test_summary_single_sample () =
  let s = Stats.Summary.create () in
  Stats.Summary.add s 3.5;
  check Alcotest.int "count" 1 (Stats.Summary.count s);
  check (Alcotest.float 0.0) "mean" 3.5 (Stats.Summary.mean s);
  check (Alcotest.float 0.0) "variance" 0.0 (Stats.Summary.variance s);
  check (Alcotest.float 0.0) "min" 3.5 (Stats.Summary.min s);
  check (Alcotest.float 0.0) "max" 3.5 (Stats.Summary.max s)

let test_log_histogram_empty_percentile_raises () =
  let h = Stats.Log_histogram.create () in
  Alcotest.check_raises "empty"
    (Invalid_argument "Log_histogram.percentile: empty") (fun () ->
      ignore (Stats.Log_histogram.percentile h 0.5))

(* --- Component consistency: obs counters == stats records ------------ *)

let test_tlb_obs_matches_stats () =
  let reg = Obs.Registry.create () in
  let tlb =
    Tlb.create ~obs:(Obs.Scope.v ~prefix:"tlb" reg) ~entries:16 ()
  in
  let rng = Prng.create ~seed:3 () in
  for _ = 1 to 2_000 do
    let key = Prng.int rng 64 in
    match Tlb.lookup tlb key with
    | Some _ -> ()
    | None -> ignore (Tlb.insert tlb key key)
  done;
  let s = Tlb.stats tlb in
  check Alcotest.int "lookups" s.Tlb.lookups (counter_value reg "tlb.lookups");
  check Alcotest.int "hits" s.Tlb.hits (counter_value reg "tlb.hits");
  check Alcotest.int "misses" s.Tlb.misses (counter_value reg "tlb.misses");
  check Alcotest.int "insertions" s.Tlb.insertions
    (counter_value reg "tlb.insertions");
  check Alcotest.int "evictions" s.Tlb.evictions
    (counter_value reg "tlb.evictions");
  Tlb.reset_stats tlb;
  check Alcotest.int "reset_stats also zeroes obs" 0
    (counter_value reg "tlb.lookups")

let test_machine_obs_matches_counters () =
  let reg = Obs.Registry.create ~trace:(Obs.Trace.create ~capacity:1024) () in
  let m =
    Machine.create
      ~obs:(Obs.Scope.v ~prefix:"machine" reg)
      { Machine.default_config with
        ram_pages = 1 lsl 10; tlb_entries = 32; huge_size = 4 }
  in
  let rng = Prng.create ~seed:5 () in
  let warmup = Array.init 3_000 (fun _ -> Prng.int rng (1 lsl 13)) in
  let trace = Array.init 3_000 (fun _ -> Prng.int rng (1 lsl 13)) in
  let c = Machine.run ~warmup m trace in
  check Alcotest.int "accesses" c.Machine.accesses
    (counter_value reg "machine.accesses");
  check Alcotest.int "tlb_hits" c.Machine.tlb_hits
    (counter_value reg "machine.tlb_hits");
  check Alcotest.int "tlb_misses" c.Machine.tlb_misses
    (counter_value reg "machine.tlb_misses");
  check Alcotest.int "page_faults" c.Machine.page_faults
    (counter_value reg "machine.page_faults");
  check Alcotest.int "ios" c.Machine.ios (counter_value reg "machine.ios");
  (* The machine's TLB counters are the same events, one layer down;
     run resets both views at the warmup boundary. *)
  check Alcotest.int "machine.tlb.misses mirrors tlb_misses"
    c.Machine.tlb_misses
    (counter_value reg "machine.tlb.misses");
  check Alcotest.bool "trace recorded io events" true
    (List.exists
       (fun e -> e.Obs.Event.kind = Obs.Event.Io)
       (Obs.Trace.events (Obs.Registry.trace reg)))

let test_simulation_obs_matches_report () =
  let reg = Obs.Registry.create () in
  let params = Params.derive ~p:(1 lsl 12) ~w:64 () in
  let x = Policy.instantiate (module Lru) ~capacity:64 () in
  let y =
    Policy.instantiate (module Lru) ~capacity:(Params.usable_pages params) ()
  in
  let z =
    Simulation.create ~seed:11
      ~obs:(Obs.Scope.v ~prefix:"sim" reg)
      ~params ~x ~y ()
  in
  let rng = Prng.create ~seed:13 () in
  let warmup = Array.init 2_000 (fun _ -> Prng.int rng (1 lsl 14)) in
  let trace = Array.init 2_000 (fun _ -> Prng.int rng (1 lsl 14)) in
  let r = Simulation.run ~warmup z trace in
  check Alcotest.int "accesses" r.Simulation.accesses
    (counter_value reg "sim.accesses");
  check Alcotest.int "ios" r.Simulation.ios (counter_value reg "sim.ios");
  check Alcotest.int "tlb_fills" r.Simulation.tlb_fills
    (counter_value reg "sim.tlb_fills");
  check Alcotest.int "decoding_misses" r.Simulation.decoding_misses
    (counter_value reg "sim.decoding_misses");
  check (Alcotest.float 0.0) "max_bucket_load gauge"
    (float_of_int r.Simulation.max_bucket_load)
    (Obs.Gauge.value (Obs.Registry.gauge reg "sim.max_bucket_load"))

let test_walker_obs_matches_stats () =
  let reg = Obs.Registry.create () in
  let pt = Page_table.create () in
  let w = Walker.create ~obs:(Obs.Scope.v ~prefix:"walker" reg) pt in
  let rng = Prng.create ~seed:17 () in
  for _ = 1 to 500 do
    let v = Prng.int rng (1 lsl 16) in
    if Page_table.lookup pt v = None then Page_table.map pt ~vpage:v ~frame:v ();
    ignore (Walker.translate w v)
  done;
  let s = Walker.stats w in
  check Alcotest.int "walks" s.Walker.walks (counter_value reg "walker.walks");
  check Alcotest.int "pwc_hits" s.Walker.pwc_hits
    (counter_value reg "walker.pwc_hits");
  check Alcotest.int "memory_accesses" s.Walker.total_memory_accesses
    (counter_value reg "walker.memory_accesses");
  check Alcotest.int "cycle histogram count" s.Walker.walks
    (Obs.Histogram.count (Obs.Registry.histogram reg "walker.walk_cycles"))

let test_hierarchy_obs_matches_stats () =
  let reg = Obs.Registry.create () in
  let h = Hierarchy.create ~obs:(Obs.Scope.v ~prefix:"hier" reg) () in
  let rng = Prng.create ~seed:19 () in
  for _ = 1 to 2_000 do
    let v = Prng.int rng 4_096 in
    match Hierarchy.lookup h v with
    | Some _, _ -> ()
    | None, _ -> Hierarchy.insert h v v
  done;
  check Alcotest.int "lookups" (Hierarchy.lookups h)
    (counter_value reg "hier.lookups");
  check Alcotest.int "l1 lookups" (Hierarchy.l1_stats h).Tlb.lookups
    (counter_value reg "hier.l1.lookups");
  check Alcotest.int "l2 misses" (Hierarchy.l2_stats h).Tlb.misses
    (counter_value reg "hier.l2.misses");
  check Alcotest.int "latency histogram count" (Hierarchy.lookups h)
    (Obs.Histogram.count (Obs.Registry.histogram reg "hier.lookup_cycles"))

(* --- Instrumented policies ------------------------------------------ *)

let test_instrumented_wrap_matches_sim () =
  let reg = Obs.Registry.create () in
  let inst =
    Instrumented.wrap
      ~obs:(Obs.Scope.v ~prefix:"policy" reg)
      (Policy.instantiate (module Lru) ~capacity:8 ())
  in
  let rng = Prng.create ~seed:23 () in
  let trace = Array.init 1_000 (fun _ -> Prng.int rng 32) in
  let stats = Sim.run inst trace in
  check Alcotest.int "accesses" stats.Sim.accesses
    (counter_value reg "policy.accesses");
  check Alcotest.int "hits" stats.Sim.hits (counter_value reg "policy.hits");
  check Alcotest.int "misses" stats.Sim.misses
    (counter_value reg "policy.misses");
  check Alcotest.int "evictions" stats.Sim.evictions
    (counter_value reg "policy.evictions")

let test_instrumented_make_is_transparent () =
  let module M = Instrumented.Make (Lru) in
  let reg = Obs.Registry.create () in
  let t =
    M.create_observed ~obs:(Obs.Scope.v ~prefix:"lru" reg) ~capacity:2 ()
  in
  check Alcotest.string "name preserved" Lru.name M.name;
  ignore (M.access t 1);
  ignore (M.access t 2);
  ignore (M.access t 1);
  ignore (M.access t 3);
  check Alcotest.int "capacity" 2 (M.capacity t);
  check Alcotest.int "size" 2 (M.size t);
  check Alcotest.bool "mem" true (M.mem t 3);
  check Alcotest.int "accesses" 4 (counter_value reg "lru.accesses");
  check Alcotest.int "hits" 1 (counter_value reg "lru.hits");
  check Alcotest.int "misses" 3 (counter_value reg "lru.misses");
  check Alcotest.int "evictions" 1 (counter_value reg "lru.evictions");
  (* The same behaviour as the unwrapped policy. *)
  let plain = Policy.instantiate (module Lru) ~capacity:2 () in
  List.iter (fun p -> ignore (plain.Policy.access p)) [ 1; 2; 1; 3 ];
  check
    (Alcotest.list Alcotest.int)
    "resident set matches plain LRU"
    (List.sort compare (plain.Policy.resident ()))
    (List.sort compare (M.resident t))

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [ Alcotest.test_case "render" `Quick test_json_render ] );
      ( "registry",
        [
          Alcotest.test_case "interning" `Quick test_registry_interning;
          Alcotest.test_case "sorted + reset" `Quick
            test_registry_sorted_and_reset;
          Alcotest.test_case "snapshot shape" `Quick
            test_registry_snapshot_shape;
        ] );
      ( "scope",
        [
          Alcotest.test_case "prefixes" `Quick test_scope_prefixes;
          Alcotest.test_case "null scope" `Quick test_scope_null_is_isolated;
        ] );
      ( "trace",
        [
          Alcotest.test_case "ring keeps tail" `Quick test_trace_ring_keeps_tail;
          Alcotest.test_case "disabled no-op" `Quick test_trace_disabled_is_noop;
          Alcotest.test_case "jsonl" `Quick test_trace_jsonl;
          Alcotest.test_case "bad capacity" `Quick
            test_trace_rejects_bad_capacity;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "single sample" `Quick test_histogram_single_sample;
          Alcotest.test_case "negative rejected" `Quick
            test_histogram_rejects_negative;
          Alcotest.test_case "summary NaN rejected" `Quick
            test_summary_rejects_nan;
          Alcotest.test_case "summary single sample" `Quick
            test_summary_single_sample;
          Alcotest.test_case "empty percentile raises" `Quick
            test_log_histogram_empty_percentile_raises;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "tlb" `Quick test_tlb_obs_matches_stats;
          Alcotest.test_case "machine" `Quick test_machine_obs_matches_counters;
          Alcotest.test_case "simulation" `Quick
            test_simulation_obs_matches_report;
          Alcotest.test_case "walker" `Quick test_walker_obs_matches_stats;
          Alcotest.test_case "hierarchy" `Quick test_hierarchy_obs_matches_stats;
        ] );
      ( "instrumented",
        [
          Alcotest.test_case "wrap matches sim" `Quick
            test_instrumented_wrap_matches_sim;
          Alcotest.test_case "make transparent" `Quick
            test_instrumented_make_is_transparent;
        ] );
    ]
