(* Tests for the ASID-tagged TLB, the L1/L2 TLB hierarchy, and the HPC
   workload kernels. *)

open Atp_tlb
open Atp_workloads
open Atp_util

let check = Alcotest.check

(* --- Asid -------------------------------------------------------------- *)

let test_asid_isolation () =
  let t = Asid.create ~entries:8 () in
  ignore (Asid.insert t ~asid:1 100 11);
  ignore (Asid.insert t ~asid:2 100 22);
  check Alcotest.(option int) "asid 1 sees its own" (Some 11)
    (Asid.lookup t ~asid:1 100);
  check Alcotest.(option int) "asid 2 sees its own" (Some 22)
    (Asid.lookup t ~asid:2 100);
  check Alcotest.(option int) "asid 3 sees nothing" None
    (Asid.lookup t ~asid:3 100)

let test_asid_survives_switch () =
  (* The whole point of ASIDs: no flush on switch. *)
  let t = Asid.create ~entries:8 () in
  ignore (Asid.insert t ~asid:1 5 50);
  (* "switch" to asid 2, do work, switch back *)
  ignore (Asid.insert t ~asid:2 6 60);
  check Alcotest.(option int) "entry survived" (Some 50)
    (Asid.lookup t ~asid:1 5)

let test_asid_global_lru_pressure () =
  (* A noisy neighbor can evict another process's entries. *)
  let t = Asid.create ~entries:4 () in
  ignore (Asid.insert t ~asid:1 0 0);
  for v = 0 to 9 do
    ignore (Asid.insert t ~asid:2 v v)
  done;
  check Alcotest.(option int) "evicted by the neighbor" None
    (Asid.lookup t ~asid:1 0);
  let share = Asid.per_asid_share t in
  check Alcotest.(list (pair int int)) "asid 2 owns the TLB" [ (2, 4) ] share

let test_asid_flush_asid () =
  let t = Asid.create ~entries:8 () in
  ignore (Asid.insert t ~asid:1 0 0);
  ignore (Asid.insert t ~asid:1 1 1);
  ignore (Asid.insert t ~asid:2 0 0);
  check Alcotest.int "dropped two" 2 (Asid.flush_asid t 1);
  check Alcotest.(option int) "asid 1 gone" None (Asid.lookup t ~asid:1 0);
  check Alcotest.(option int) "asid 2 intact" (Some 0) (Asid.lookup t ~asid:2 0)

let test_asid_vs_flush_miss_rates () =
  (* Two processes round-robin over modest working sets that together
     fit in the TLB: with ASIDs, steady state has no misses; with
     flush-on-switch, every switch rebuilds. *)
  let entries = 64 in
  let work asid t flush =
    if flush then Asid.flush_all t;
    for v = 0 to 15 do
      match Asid.lookup t ~asid v with
      | Some _ -> ()
      | None -> ignore (Asid.insert t ~asid v v)
    done
  in
  let run flush =
    let t = Asid.create ~entries () in
    for _ = 1 to 50 do
      work 1 t flush;
      work 2 t flush
    done;
    (Asid.stats t).Tlb.misses
  in
  let with_asid = run false and with_flush = run true in
  check Alcotest.int "asid: only compulsory misses" 32 with_asid;
  check Alcotest.bool
    (Printf.sprintf "flushing costs much more (%d vs %d)" with_flush with_asid)
    true
    (with_flush > 10 * with_asid)

let test_asid_bounds () =
  let t = Asid.create ~asid_bits:4 ~entries:4 () in
  check Alcotest.int "max asid" 15 (Asid.max_asid t);
  Alcotest.check_raises "asid out of range"
    (Invalid_argument "Asid: asid out of range") (fun () ->
      ignore (Asid.lookup t ~asid:16 0))

(* --- Asid.Allocator ------------------------------------------------------ *)

let test_allocator_rollover () =
  let t = Asid.create ~asid_bits:2 ~entries:8 () in
  let a = Asid.Allocator.create t in
  check Alcotest.int "capacity" 4 (Asid.Allocator.capacity a);
  let ids = List.init 4 (fun _ -> Asid.Allocator.allocate a) in
  check Alcotest.(list int) "fresh ids in order" [ 0; 1; 2; 3 ] ids;
  ignore (Asid.insert t ~asid:0 1 111);
  Asid.Allocator.free a 0;
  Asid.Allocator.free a 2;
  check Alcotest.int "live" 2 (Asid.Allocator.live a);
  check Alcotest.int "no rollover yet" 0 (Asid.Allocator.generation a);
  (* Freed ids stay quarantined: the entry of dead asid 0 is still in
     the TLB right now — only the rollover flush launders it. *)
  check Alcotest.(option int) "lazy free leaves the entry" (Some 111)
    (Asid.lookup t ~asid:0 1);
  let r1 = Asid.Allocator.allocate a in
  check Alcotest.int "rollover recycles the smallest freed id" 0 r1;
  check Alcotest.int "one generation" 1 (Asid.Allocator.generation a);
  check Alcotest.(option int) "rollover flushed the stale entry" None
    (Asid.lookup t ~asid:0 1);
  let r2 = Asid.Allocator.allocate a in
  check Alcotest.int "then the next clean id" 2 r2;
  check Alcotest.int "still one generation" 1 (Asid.Allocator.generation a);
  Asid.Allocator.free a r1;
  check Alcotest.int "second rollover" 0 (Asid.Allocator.allocate a);
  check Alcotest.int "generation 2" 2 (Asid.Allocator.generation a);
  Alcotest.check_raises "exhaustion"
    (Invalid_argument "Asid.Allocator.allocate: address-space ids exhausted")
    (fun () -> ignore (Asid.Allocator.allocate a));
  Alcotest.check_raises "free out of range"
    (Invalid_argument "Asid.Allocator.free: bad asid") (fun () ->
      Asid.Allocator.free a 4)

(* ASID reuse never surfaces a dead address space's translations, even
   across generation rollovers — checked differentially against a
   reference that tracks, per (owner, vpage), exactly what the current
   owner inserted.  A payload from any previous owner of a recycled
   asid is a leak. *)
let prop_allocator_never_leaks =
  let ops_gen =
    QCheck.(list_of_size (Gen.int_range 0 400) (pair (int_bound 99) (int_bound 7)))
  in
  QCheck.Test.make ~count:100 ~name:"Allocator: recycled asids never leak"
    ops_gen (fun ops ->
      let t = Asid.create ~asid_bits:2 ~entries:6 () in
      let a = Asid.Allocator.create t in
      (* Live address spaces: asid -> (uid, reference contents). *)
      let live = Hashtbl.create 8 in
      let next_uid = ref 0 in
      let asids () = Hashtbl.fold (fun k _ acc -> k :: acc) live [] in
      List.iter
        (fun (op, vpage) ->
          match op mod 4 with
          | 0 ->
            if Hashtbl.length live < Asid.Allocator.capacity a then begin
              let asid = Asid.Allocator.allocate a in
              let uid = !next_uid in
              incr next_uid;
              if Hashtbl.mem live asid then
                QCheck.Test.fail_reportf "asid %d double-allocated" asid;
              Hashtbl.add live asid (uid, Hashtbl.create 4)
            end
          | 1 -> (
            match asids () with
            | [] -> ()
            | l ->
              let asid = List.nth l (op / 4 mod List.length l) in
              Hashtbl.remove live asid;
              Asid.Allocator.free a asid)
          | 2 -> (
            match asids () with
            | [] -> ()
            | l ->
              let asid = List.nth l (op / 4 mod List.length l) in
              let uid, contents = Hashtbl.find live asid in
              let payload = (uid * 1000) + vpage in
              Hashtbl.replace contents vpage payload;
              ignore (Asid.insert t ~asid vpage payload))
          | _ -> (
            match asids () with
            | [] -> ()
            | l ->
              let asid = List.nth l (op / 4 mod List.length l) in
              let _, contents = Hashtbl.find live asid in
              (match Asid.lookup t ~asid vpage with
              | None -> ()  (* evicted or flushed: always legal *)
              | Some p -> (
                match Hashtbl.find_opt contents vpage with
                | Some expected when expected = p -> ()
                | Some expected ->
                  QCheck.Test.fail_reportf
                    "asid %d vpage %d: got %d, current owner wrote %d" asid
                    vpage p expected
                | None ->
                  QCheck.Test.fail_reportf
                    "asid %d vpage %d: stale payload %d leaked from a dead \
                     address space"
                    asid vpage p))))
        ops;
      Hashtbl.iter
        (fun asid (_, contents) ->
          Hashtbl.iter
            (fun vpage expected ->
              match Asid.lookup t ~asid vpage with
              | Some p when p <> expected ->
                QCheck.Test.fail_reportf "final sweep: asid %d leaked" asid
              | _ -> ())
            contents)
        live;
      true)

(* --- Hierarchy ----------------------------------------------------------- *)

let test_hierarchy_levels () =
  let t = Hierarchy.create () in
  (match Hierarchy.lookup t 1 with
   | None, Hierarchy.Miss cycles ->
     check Alcotest.int "miss probes both" 8 cycles
   | _ -> Alcotest.fail "expected a miss");
  Hierarchy.insert t 1 10;
  (match Hierarchy.lookup t 1 with
   | Some 10, Hierarchy.L1_hit cycles -> check Alcotest.int "l1 fast" 1 cycles
   | _ -> Alcotest.fail "expected an L1 hit")

let test_hierarchy_l2_backstop () =
  (* Overflow L1 (64 entries): older entries still hit in L2 and are
     refilled into L1. *)
  let t = Hierarchy.create () in
  for v = 0 to 99 do Hierarchy.insert t v v done;
  (match Hierarchy.lookup t 0 with
   | Some 0, Hierarchy.L2_hit cycles -> check Alcotest.int "l2 latency" 8 cycles
   | _ -> Alcotest.fail "expected an L2 hit");
  (* Now it is back in L1. *)
  match Hierarchy.lookup t 0 with
  | Some 0, Hierarchy.L1_hit _ -> ()
  | _ -> Alcotest.fail "expected an L1 refill hit"

let test_hierarchy_invalidate_both () =
  let t = Hierarchy.create () in
  Hierarchy.insert t 7 70;
  check Alcotest.bool "shot down" true (Hierarchy.invalidate t 7);
  match Hierarchy.lookup t 7 with
  | None, _ -> ()
  | Some _, _ -> Alcotest.fail "survived shootdown"

let test_hierarchy_average_latency () =
  let t = Hierarchy.create () in
  Hierarchy.insert t 1 1;
  ignore (Hierarchy.lookup t 1);
  ignore (Hierarchy.lookup t 2);
  (* 1 cycle + 8 cycles over two lookups. *)
  check (Alcotest.float 1e-9) "average" 4.5 (Hierarchy.average_latency t)

(* --- Hierarchy: cache-resident victim store ------------------------------- *)

let tiered_hierarchy ?(l1 = 2) ?(l2 = 4) ?(tc = 8) () =
  Hierarchy.create
    ~config:
      { Hierarchy.default_config with
        l1_entries = l1; l2_entries = l2; tcache_entries = tc }
    ()

let test_hierarchy_tcache_recovers_l2_victims () =
  let t = tiered_hierarchy () in
  (* Overflow both TLB levels: entries evicted from L2 must land in
     the victim store instead of vanishing. *)
  for v = 0 to 9 do Hierarchy.insert t v (v * 10) done;
  (match Hierarchy.lookup t 0 with
   | Some 0, Hierarchy.Tcache_hit cycles ->
     (* l1 + l2 + tcache latencies: 1 + 7 + 30. *)
     check Alcotest.int "victim-store latency" 38 cycles
   | _, _ -> Alcotest.fail "expected a victim-store recovery");
  (* The recovered entry migrated back into the TLB levels. *)
  match Hierarchy.lookup t 0 with
  | Some 0, Hierarchy.L1_hit _ -> ()
  | _ -> Alcotest.fail "expected an L1 refill after recovery"

let test_hierarchy_tcache_miss_pays_probe () =
  let t = tiered_hierarchy () in
  (match Hierarchy.lookup t 42 with
   | None, Hierarchy.Miss cycles ->
     check Alcotest.int "miss probes all three" 38 cycles
   | _ -> Alcotest.fail "expected a miss");
  (* With the tier off, the same miss costs only the two TLB levels. *)
  let t0 = Hierarchy.create () in
  match Hierarchy.lookup t0 42 with
  | None, Hierarchy.Miss cycles -> check Alcotest.int "two-level miss" 8 cycles
  | _ -> Alcotest.fail "expected a miss"

let test_hierarchy_tcache_invalidate () =
  let t = tiered_hierarchy () in
  for v = 0 to 9 do Hierarchy.insert t v v done;
  (* Page 0 now lives only in the victim store; a shootdown must reach
     it there. *)
  check Alcotest.bool "shot down in the tier" true (Hierarchy.invalidate t 0);
  match Hierarchy.lookup t 0 with
  | None, _ -> ()
  | Some _, _ -> Alcotest.fail "survived shootdown in the victim store"

(* Cycle conservation across configurations and workload shapes: the
   hierarchy's total is exactly the per-outcome cycle sum, and every
   outcome's cycle count decomposes into the configured latencies. *)
let prop_hierarchy_cycle_conservation =
  QCheck.Test.make ~count:60 ~name:"Hierarchy cycles decompose by outcome"
    QCheck.(
      triple
        (oneofl [ 0; 4; 16 ])
        (list_of_size Gen.(int_range 1 300) (int_bound 60))
        (oneofl [ (2, 4); (4, 16); (64, 1536) ]))
    (fun (tc, keys, (l1, l2)) ->
      let cfg =
        { Hierarchy.default_config with
          l1_entries = l1; l2_entries = l2; tcache_entries = tc }
      in
      let t = Hierarchy.create ~config:cfg () in
      let l1h = ref 0 and l2h = ref 0 and tch = ref 0 and mis = ref 0 in
      let billed = ref 0 in
      List.iter
        (fun k ->
          let _, outcome = Hierarchy.lookup t k in
          (match outcome with
           | Hierarchy.L1_hit c -> incr l1h; billed := !billed + c
           | Hierarchy.L2_hit c -> incr l2h; billed := !billed + c
           | Hierarchy.Tcache_hit c -> incr tch; billed := !billed + c
           | Hierarchy.Miss c ->
             incr mis;
             billed := !billed + c;
             Hierarchy.insert t k (k * 3)))
        keys;
      let miss_lat =
        cfg.Hierarchy.l1_latency + cfg.Hierarchy.l2_latency
        + if tc > 0 then cfg.Hierarchy.tcache_latency else 0
      in
      let decomposed =
        (!l1h * cfg.Hierarchy.l1_latency)
        + (!l2h * (cfg.Hierarchy.l1_latency + cfg.Hierarchy.l2_latency))
        + (!tch * miss_lat)
        + (!mis * miss_lat)
      in
      if tc = 0 && !tch > 0 then
        QCheck.Test.fail_reportf "tier disabled but %d tcache hits" !tch;
      if Hierarchy.total_cycles t <> !billed then
        QCheck.Test.fail_reportf "total %d <> billed %d"
          (Hierarchy.total_cycles t) !billed;
      if Hierarchy.total_cycles t <> decomposed then
        QCheck.Test.fail_reportf "total %d <> decomposition %d"
          (Hierarchy.total_cycles t) decomposed;
      true)

(* --- HPC workloads --------------------------------------------------------- *)

let test_gups_uniformish () =
  let rng = Prng.create ~seed:1 () in
  let w = Hpc.gups ~table_pages:64 rng in
  let trace = Workload.generate w 64_000 in
  let counts = Array.make 64 0 in
  Array.iter (fun p -> counts.(p) <- counts.(p) + 1) trace;
  Array.iteri
    (fun i c ->
      check Alcotest.bool
        (Printf.sprintf "page %d near uniform (%d)" i c)
        true
        (c > 700 && c < 1300))
    counts

let test_stencil_locality () =
  let w = Hpc.stencil ~rows:64 ~cols:512 () in
  (* 512 cols x 8 bytes = one page per row: N/S are +-1 page, W/C/E the
     same page. *)
  let trace = Workload.generate w 5 in
  check Alcotest.(array int) "first cell touches rows 0,1,1,1,2"
    [| 0; 1; 1; 1; 2 |] trace;
  (* All pages within the grid. *)
  let trace = Workload.generate w 10_000 in
  Array.iter
    (fun p ->
      check Alcotest.bool "page in grid" true (p >= 0 && p < w.Workload.virtual_pages))
    trace

let test_multistream_pattern () =
  let w = Hpc.multistream ~streams:2 ~virtual_pages:100 () in
  let trace = Workload.generate w 6 in
  (* Streams at partitions [0,50) and [50,100), interleaved. *)
  check Alcotest.(array int) "interleaved fronts" [| 0; 50; 1; 51; 2; 52 |] trace

let test_multistream_wraps () =
  let w = Hpc.multistream ~streams:4 ~virtual_pages:16 () in
  let trace = Workload.generate w 64 in
  Array.iter
    (fun p -> check Alcotest.bool "in space" true (p >= 0 && p < 16))
    trace

let test_pointer_chase_cycle () =
  let rng = Prng.create ~seed:2 () in
  let w = Hpc.pointer_chase ~working_set:50 ~virtual_pages:1000 rng in
  let trace = Workload.generate w 100 in
  (* One full cycle visits each member exactly once. *)
  let first_cycle = Array.sub trace 0 50 in
  let sorted = Array.copy first_cycle in
  Array.sort compare sorted;
  let distinct =
    Array.length (Array.of_list (List.sort_uniq compare (Array.to_list first_cycle)))
  in
  check Alcotest.int "50 distinct pages per lap" 50 distinct;
  (* The second lap repeats the first. *)
  check Alcotest.(array int) "periodic" first_cycle (Array.sub trace 50 50)

let test_pointer_chase_defeats_small_tlb () =
  (* Classic result: a chase over more pages than TLB entries misses
     every access under LRU. *)
  let rng = Prng.create ~seed:3 () in
  let w = Hpc.pointer_chase ~working_set:100 ~virtual_pages:100 rng in
  let trace = Workload.generate w 1_000 in
  let inst = Atp_paging.Policy.instantiate (module Atp_paging.Lru) ~capacity:99 () in
  let stats = Atp_paging.Sim.run inst trace in
  check Alcotest.int "misses everything" 1_000 stats.Atp_paging.Sim.misses

let () =
  Alcotest.run "atp.multi"
    [
      ( "asid",
        [
          Alcotest.test_case "isolation" `Quick test_asid_isolation;
          Alcotest.test_case "survives switch" `Quick test_asid_survives_switch;
          Alcotest.test_case "global LRU pressure" `Quick test_asid_global_lru_pressure;
          Alcotest.test_case "flush one asid" `Quick test_asid_flush_asid;
          Alcotest.test_case "asid vs flush" `Quick test_asid_vs_flush_miss_rates;
          Alcotest.test_case "bounds" `Quick test_asid_bounds;
          Alcotest.test_case "allocator rollover" `Quick test_allocator_rollover;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_allocator_never_leaks ] );
      ( "hierarchy",
        [
          Alcotest.test_case "levels" `Quick test_hierarchy_levels;
          Alcotest.test_case "l2 backstop" `Quick test_hierarchy_l2_backstop;
          Alcotest.test_case "invalidate both" `Quick test_hierarchy_invalidate_both;
          Alcotest.test_case "average latency" `Quick test_hierarchy_average_latency;
          Alcotest.test_case "tcache recovers l2 victims" `Quick
            test_hierarchy_tcache_recovers_l2_victims;
          Alcotest.test_case "tcache miss pays probe" `Quick
            test_hierarchy_tcache_miss_pays_probe;
          Alcotest.test_case "tcache invalidate" `Quick
            test_hierarchy_tcache_invalidate;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_hierarchy_cycle_conservation ] );
      ( "hpc",
        [
          Alcotest.test_case "gups uniform" `Quick test_gups_uniformish;
          Alcotest.test_case "stencil locality" `Quick test_stencil_locality;
          Alcotest.test_case "multistream pattern" `Quick test_multistream_pattern;
          Alcotest.test_case "multistream wraps" `Quick test_multistream_wraps;
          Alcotest.test_case "pointer chase cycle" `Quick test_pointer_chase_cycle;
          Alcotest.test_case "chase defeats small TLB" `Quick
            test_pointer_chase_defeats_small_tlb;
        ] );
    ]
