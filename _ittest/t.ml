let () =
  let module I = Atp_util.Int_table in
  let t = I.create () in
  let h = Hashtbl.create 16 in
  let seed = ref 123456789 in
  let rand m = seed := (!seed * 1103515245 + 12345) land 0x3FFFFFFF; !seed mod m in
  for step = 1 to 200000 do
    let k = rand 500 in
    (match rand 3 with
     | 0 -> let v = rand 1000 in I.set t k v; Hashtbl.replace h k v
     | 1 -> let a = I.remove t k and b = Hashtbl.mem h k in
            Hashtbl.remove h k;
            if a <> b then failwith (Printf.sprintf "remove mismatch step %d" step)
     | _ -> let a = I.find t k and b = Hashtbl.find_opt h k in
            if a <> b then failwith (Printf.sprintf "find mismatch step %d key %d" step k));
    if I.length t <> Hashtbl.length h then
      failwith (Printf.sprintf "length mismatch step %d: %d vs %d" step (I.length t) (Hashtbl.length h))
  done;
  Hashtbl.iter (fun k v -> if I.find t k <> Some v then failwith "final mismatch") h;
  print_endline "OK"
